package model

import (
	"fmt"
	"io"
	"sort"

	"spmap/internal/graph"
	"spmap/internal/mapping"
)

// TaskSchedule is the placement of one task in a concrete schedule.
type TaskSchedule struct {
	Task   graph.NodeID
	Device int
	Start  float64
	Finish float64
}

// Schedule is a concrete simulated execution of a mapping: per-task times
// plus the achieved makespan and per-device busy statistics.
type Schedule struct {
	Tasks    []TaskSchedule
	Makespan float64
	// BusyTime is the summed execution time per device.
	BusyTime []float64
	// Utilization is BusyTime normalized by (makespan x slots) per
	// device; spatial devices are normalized by makespan only.
	Utilization []float64
}

// BestSchedule simulates the mapping under every configured schedule
// order and returns the full schedule achieving the minimum makespan. It
// returns nil for infeasible mappings.
func (e *Evaluator) BestSchedule(m mapping.Mapping) *Schedule {
	if !e.Feasible(m) {
		return nil
	}
	best := -1
	bestMs := Infeasible
	for i, order := range e.orders {
		if ms := e.MakespanOrder(m, order); ms < bestMs {
			bestMs = ms
			best = i
		}
	}
	if best < 0 {
		return nil
	}
	// Re-simulate the winning order so the scratch start/finish arrays
	// reflect it, then snapshot.
	e.MakespanOrder(m, e.orders[best])
	s := &Schedule{
		Makespan:    bestMs,
		BusyTime:    make([]float64, e.P.NumDevices()),
		Utilization: make([]float64, e.P.NumDevices()),
	}
	for v := 0; v < e.G.NumTasks(); v++ {
		s.Tasks = append(s.Tasks, TaskSchedule{
			Task: graph.NodeID(v), Device: m[v],
			Start: e.start[v], Finish: e.finish[v],
		})
		s.BusyTime[m[v]] += e.exec[m[v]][v]
	}
	sort.Slice(s.Tasks, func(a, b int) bool {
		if s.Tasks[a].Start != s.Tasks[b].Start {
			return s.Tasks[a].Start < s.Tasks[b].Start
		}
		return s.Tasks[a].Task < s.Tasks[b].Task
	})
	for d := range s.Utilization {
		if bestMs <= 0 {
			continue
		}
		cap := bestMs
		if !e.P.Devices[d].Spatial {
			cap *= float64(e.P.Devices[d].NumSlots())
		}
		s.Utilization[d] = s.BusyTime[d] / cap
	}
	return s
}

// WriteGantt renders the schedule as a textual Gantt chart, one row per
// task, grouped by device.
func (s *Schedule) WriteGantt(w io.Writer, g *graph.DAG, deviceName func(int) string) {
	if s.Makespan <= 0 {
		fmt.Fprintln(w, "(empty schedule)")
		return
	}
	const width = 60
	scale := float64(width) / s.Makespan
	byDevice := map[int][]TaskSchedule{}
	var devs []int
	for _, ts := range s.Tasks {
		if _, ok := byDevice[ts.Device]; !ok {
			devs = append(devs, ts.Device)
		}
		byDevice[ts.Device] = append(byDevice[ts.Device], ts)
	}
	sort.Ints(devs)
	for _, d := range devs {
		fmt.Fprintf(w, "%s (utilization %.0f%%)\n", deviceName(d), 100*s.Utilization[d])
		for _, ts := range byDevice[d] {
			name := g.Task(ts.Task).Name
			if name == "" {
				name = fmt.Sprintf("task%d", int(ts.Task))
			}
			startCol := int(ts.Start * scale)
			endCol := int(ts.Finish * scale)
			if endCol <= startCol {
				endCol = startCol + 1
			}
			if endCol > width {
				endCol = width
			}
			bar := make([]byte, width)
			for i := range bar {
				switch {
				case i >= startCol && i < endCol:
					bar[i] = '#'
				default:
					bar[i] = '.'
				}
			}
			fmt.Fprintf(w, "  %-18s |%s|\n", name, bar)
		}
	}
	fmt.Fprintf(w, "makespan: %g\n", s.Makespan)
}
