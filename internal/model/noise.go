package model

import "spmap/internal/eval"

// The stochastic cost model (PR 9): per-(task, device) and per-edge
// multiplicative noise on execution and transfer costs. The model is
// implemented in package eval next to the compiled kernel it perturbs
// (model depends on eval, so the type lives there); these aliases make
// it reachable from the modeling layer alongside Evaluator, which is
// where callers conceptually configure costs.

// NoiseModel describes multiplicative stochastic perturbations of the
// cost model: independent per-(task, device) execution-time factors, a
// common-mode per-device factor (device-wide slowdowns — thermal
// throttling, contention), and per-edge transfer-size factors. Sampling
// is deterministic: sample s of a fixed model is one fixed perturbed
// cost world (hashed seed substreams), so Monte-Carlo objectives built
// on it inherit the repo's determinism contract.
type NoiseModel = eval.NoiseModel

// NoiseKind selects the perturbation distribution of a NoiseModel.
type NoiseKind = eval.NoiseKind

// Perturbation distributions.
const (
	// NoiseLognormal draws multiplicative lognormal factors exp(σZ).
	NoiseLognormal = eval.NoiseLognormal
	// NoiseUniform draws uniform factors 1 + σU, U in [-1, 1) (σ < 1).
	NoiseUniform = eval.NoiseUniform
)
