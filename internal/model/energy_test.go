package model

import (
	"math"
	"math/rand"
	"strings"
	"testing"

	"spmap/internal/gen"
	"spmap/internal/graph"
	"spmap/internal/mapping"
	"spmap/internal/platform"
)

func energyPlatform() *platform.Platform {
	p := twoDevicePlatform()
	p.Devices[0].PowerW = 100
	p.Devices[1].PowerW = 10
	return p
}

func TestEnergyByHand(t *testing.T) {
	g := graph.New(2, 1)
	g.AddTask(graph.Task{Complexity: 1, Parallelizability: 0, Streamability: 1, SourceBytes: 1e9})
	g.AddTask(graph.Task{Complexity: 1, Parallelizability: 0, Streamability: 1})
	g.AddEdge(0, 1, 1e9)
	p := energyPlatform()
	ev := NewEvaluator(g, p)
	// Both on CPU: 2 x 1s x 100W = 200 J.
	if got := ev.Energy(mapping.Mapping{0, 0}); math.Abs(got-200) > 1e-9 {
		t.Fatalf("cpu energy = %v, want 200", got)
	}
	// Both on FPGA: 2 x 1s x 10W = 20 J (transfer energy not modeled).
	if got := ev.Energy(mapping.Mapping{1, 1}); math.Abs(got-20) > 1e-9 {
		t.Fatalf("fpga energy = %v, want 20", got)
	}
}

func TestEnergyInfeasible(t *testing.T) {
	g := graph.New(1, 0)
	g.AddTask(graph.Task{Complexity: 1, Area: 1000, SourceBytes: 1})
	p := energyPlatform()
	ev := NewEvaluator(g, p)
	if got := ev.Energy(mapping.Mapping{1}); got != Infeasible {
		t.Fatalf("energy of infeasible mapping = %v", got)
	}
}

func TestWeightedObjectiveExtremes(t *testing.T) {
	p := platform.Reference()
	rng := rand.New(rand.NewSource(3))
	g := gen.SeriesParallel(rng, 30, gen.DefaultAttr())
	ev := NewEvaluator(g, p).WithSchedules(10, 1)
	base := mapping.Baseline(g, p)
	pureTime := ev.WeightedObjective(1, 0)
	pureEnergy := ev.WeightedObjective(0, 1)
	// The baseline scores exactly 1 on each pure normalized objective.
	if got := pureTime(base); math.Abs(got-1) > 1e-9 {
		t.Fatalf("baseline pure-time objective = %v, want 1", got)
	}
	if got := pureEnergy(base); math.Abs(got-1) > 1e-9 {
		t.Fatalf("baseline pure-energy objective = %v, want 1", got)
	}
}

// TestWeightedObjectiveCachesBaseline: constructing weighted objectives
// must not recompute the baseline makespan/energy after the first call
// (regression: sweeps used to pay a full baseline simulation per
// weight). The test plants a sentinel in the cache; a recomputation
// would overwrite it and change the objective's normalization.
func TestWeightedObjectiveCachesBaseline(t *testing.T) {
	p := platform.Reference()
	rng := rand.New(rand.NewSource(8))
	g := gen.SeriesParallel(rng, 20, gen.DefaultAttr())
	ev := NewEvaluator(g, p).WithSchedules(5, 1)
	base := mapping.Baseline(g, p)

	obj := ev.WeightedObjective(1, 0) // primes the cache
	trueMs := ev.Makespan(base)
	if got := obj(base); math.Abs(got-1) > 1e-9 {
		t.Fatalf("baseline pure-time objective = %v, want 1", got)
	}
	if !ev.baseValid || ev.baseMs != trueMs {
		t.Fatalf("cache not primed: valid=%v baseMs=%v want %v", ev.baseValid, ev.baseMs, trueMs)
	}

	// Plant a sentinel: O(1) construction must read it, not recompute.
	ev.baseMs = 2 * trueMs
	obj2 := ev.WeightedObjective(1, 0)
	if got, want := obj2(base), trueMs/(2*trueMs); math.Abs(got-want) > 1e-12 {
		t.Fatalf("WeightedObjective recomputed the baseline: objective = %v, want sentinel-normalized %v", got, want)
	}
	if got := ev.BaselineMakespan(); got != 2*trueMs {
		t.Fatalf("BaselineMakespan bypassed the cache: %v", got)
	}

	// WithSchedules must invalidate (the baseline makespan depends on
	// the schedule set).
	ev.WithSchedules(5, 1)
	if ev.baseValid {
		t.Fatal("WithSchedules did not invalidate the baseline cache")
	}
	obj3 := ev.WeightedObjective(1, 0)
	if got := obj3(base); math.Abs(got-1) > 1e-9 {
		t.Fatalf("post-invalidation objective = %v, want 1", got)
	}

	// Clone shares the primed cache.
	if c := ev.Clone(); !c.baseValid || c.baseMs != ev.baseMs {
		t.Fatal("Clone dropped the baseline cache")
	}
}

func TestEDP(t *testing.T) {
	p := platform.Reference()
	rng := rand.New(rand.NewSource(4))
	g := gen.SeriesParallel(rng, 20, gen.DefaultAttr())
	ev := NewEvaluator(g, p)
	base := mapping.Baseline(g, p)
	want := ev.Makespan(base) * ev.Energy(base)
	if got := ev.EDP()(base); math.Abs(got-want) > 1e-9 {
		t.Fatalf("EDP = %v, want %v", got, want)
	}
}

func TestParetoSweepFrontIsNonDominated(t *testing.T) {
	p := platform.Reference()
	rng := rand.New(rand.NewSource(5))
	g := gen.SeriesParallel(rng, 30, gen.DefaultAttr())
	ev := NewEvaluator(g, p).WithSchedules(10, 1)
	// A toy mapper: greedy single-device choice per objective.
	mapper := func(obj Objective) (mapping.Mapping, error) {
		bestM := mapping.Baseline(g, p)
		bestC := obj(bestM)
		for d := 0; d < p.NumDevices(); d++ {
			m := mapping.New(g.NumTasks(), d)
			m.Repair(g, p)
			if c := obj(m); c < bestC {
				bestC, bestM = c, m
			}
		}
		return bestM, nil
	}
	front, err := ev.ParetoSweep([]float64{0, 0.25, 0.5, 0.75, 1}, mapper)
	if err != nil {
		t.Fatal(err)
	}
	if len(front) == 0 {
		t.Fatal("empty front")
	}
	for i, a := range front {
		for j, b := range front {
			if i == j {
				continue
			}
			if b.Makespan <= a.Makespan && b.Energy <= a.Energy &&
				(b.Makespan < a.Makespan || b.Energy < a.Energy) {
				t.Fatalf("front contains dominated point %d", i)
			}
		}
	}
	for i := 1; i < len(front); i++ {
		if front[i].Makespan < front[i-1].Makespan {
			t.Fatal("front not sorted by makespan")
		}
	}
}

func TestBestScheduleConsistent(t *testing.T) {
	p := platform.Reference()
	rng := rand.New(rand.NewSource(6))
	g := gen.SeriesParallel(rng, 40, gen.DefaultAttr())
	ev := NewEvaluator(g, p).WithSchedules(20, 1)
	m := mapping.Baseline(g, p)
	s := ev.BestSchedule(m)
	if s == nil {
		t.Fatal("nil schedule for feasible mapping")
	}
	if math.Abs(s.Makespan-ev.Makespan(m)) > 1e-12 {
		t.Fatalf("schedule makespan %v != evaluator makespan %v", s.Makespan, ev.Makespan(m))
	}
	if len(s.Tasks) != g.NumTasks() {
		t.Fatal("schedule must cover every task")
	}
	// Precedence sanity: every finish >= start; makespan = max finish.
	maxFin := 0.0
	for _, ts := range s.Tasks {
		if ts.Finish < ts.Start {
			t.Fatal("finish before start")
		}
		if ts.Finish > maxFin {
			maxFin = ts.Finish
		}
	}
	if math.Abs(maxFin-s.Makespan) > 1e-9 {
		t.Fatalf("makespan %v != max finish %v", s.Makespan, maxFin)
	}
	for d, u := range s.Utilization {
		if u < 0 || u > 1+1e-9 {
			t.Fatalf("device %d utilization %v out of range", d, u)
		}
	}
}

func TestBestScheduleInfeasible(t *testing.T) {
	g := graph.New(1, 0)
	g.AddTask(graph.Task{Complexity: 1, Area: 1e9, SourceBytes: 1})
	p := platform.Reference()
	ev := NewEvaluator(g, p)
	if s := ev.BestSchedule(mapping.Mapping{2}); s != nil {
		t.Fatal("expected nil schedule for infeasible mapping")
	}
}

func TestWriteGantt(t *testing.T) {
	p := platform.Reference()
	rng := rand.New(rand.NewSource(7))
	g := gen.SeriesParallel(rng, 10, gen.DefaultAttr())
	ev := NewEvaluator(g, p)
	s := ev.BestSchedule(mapping.Baseline(g, p))
	var sb strings.Builder
	s.WriteGantt(&sb, g, func(d int) string { return p.Devices[d].Name })
	out := sb.String()
	if !strings.Contains(out, "epyc7351p") || !strings.Contains(out, "makespan") {
		t.Fatalf("gantt rendering incomplete:\n%s", out)
	}
}

func TestDeviceHistogram(t *testing.T) {
	g := graph.New(3, 0)
	g.AddTask(graph.Task{})
	g.AddTask(graph.Task{})
	g.AddTask(graph.Task{Virtual: true})
	h := DeviceHistogram(g, mapping.Mapping{0, 1, 1})
	if h[0] != 1 || h[1] != 1 {
		t.Fatalf("histogram %v, want [1 1] with virtual excluded", h)
	}
}
