package model

import (
	"spmap/internal/graph"
	"spmap/internal/mapping"
)

// This file hosts the multi-objective extension the paper sketches in
// §II-A ("the basic algorithmic ideas presented in this work can easily
// be transferred to multi-objective optimization"): an energy model and
// weighted scalarization objectives that plug into the decomposition
// mappers and the genetic algorithm via the Objective type.

// Objective evaluates a mapping into a scalar cost to minimize. It must
// be deterministic (the greedy mappers' termination proof relies on it)
// and return Infeasible for infeasible mappings.
type Objective func(m mapping.Mapping) float64

// MakespanObjective returns the default objective: the evaluator's
// schedule-set makespan.
func (e *Evaluator) MakespanObjective() Objective {
	return func(m mapping.Mapping) float64 { return e.Makespan(m) }
}

// Energy returns the compute energy of a mapping in joules: each task's
// execution time multiplied by its device's active power. Transfer and
// idle energy are not modeled (documented simplification). Infeasible
// mappings yield Infeasible.
func (e *Evaluator) Energy(m mapping.Mapping) float64 {
	if !e.Feasible(m) {
		return Infeasible
	}
	total := 0.0
	for v := 0; v < e.G.NumTasks(); v++ {
		d := m[v]
		total += e.exec[d][v] * e.P.Devices[d].PowerW
	}
	return total
}

// EnergyObjective minimizes compute energy alone.
func (e *Evaluator) EnergyObjective() Objective {
	return func(m mapping.Mapping) float64 { return e.Energy(m) }
}

// WeightedObjective scalarizes makespan and energy:
//
//	cost = wTime * makespan/baseMakespan + wEnergy * energy/baseEnergy
//
// Both terms are normalized by the pure-CPU baseline so the weights are
// dimensionless and comparable. Weights must be non-negative and not both
// zero. The baseline objectives are cached on the evaluator, so
// constructing objectives in a weight sweep is O(1) after the first.
func (e *Evaluator) WeightedObjective(wTime, wEnergy float64) Objective {
	baseMs, baseEn := e.baselineObjectives()
	if baseMs <= 0 {
		baseMs = 1
	}
	if baseEn <= 0 {
		baseEn = 1
	}
	return func(m mapping.Mapping) float64 {
		ms := e.Makespan(m)
		if ms == Infeasible {
			return Infeasible
		}
		en := e.Energy(m)
		if en == Infeasible {
			return Infeasible
		}
		return wTime*ms/baseMs + wEnergy*en/baseEn
	}
}

// EDP returns the energy-delay-product objective (energy x makespan), a
// common single-scalar compromise.
func (e *Evaluator) EDP() Objective {
	return func(m mapping.Mapping) float64 {
		ms := e.Makespan(m)
		if ms == Infeasible {
			return Infeasible
		}
		en := e.Energy(m)
		if en == Infeasible {
			return Infeasible
		}
		return ms * en
	}
}

// ParetoPoint is one (makespan, energy) outcome of a mapping.
type ParetoPoint struct {
	Mapping  mapping.Mapping
	Makespan float64
	Energy   float64
	WTime    float64
}

// ParetoSweep runs the supplied mapper under a sweep of time/energy
// weights and returns the non-dominated front (sorted by makespan). The
// mapper receives the scalarized objective for each weight.
func (e *Evaluator) ParetoSweep(weights []float64,
	mapper func(Objective) (mapping.Mapping, error)) ([]ParetoPoint, error) {
	var pts []ParetoPoint
	for _, w := range weights {
		obj := e.WeightedObjective(w, 1-w)
		m, err := mapper(obj)
		if err != nil {
			return nil, err
		}
		pts = append(pts, ParetoPoint{
			Mapping: m, Makespan: e.Makespan(m), Energy: e.Energy(m), WTime: w,
		})
	}
	// Filter dominated points.
	var front []ParetoPoint
	for i, p := range pts {
		dominated := false
		for j, q := range pts {
			if i == j {
				continue
			}
			if q.Makespan <= p.Makespan && q.Energy <= p.Energy &&
				(q.Makespan < p.Makespan || q.Energy < p.Energy) {
				dominated = true
				break
			}
		}
		if !dominated {
			front = append(front, p)
		}
	}
	// Sort by makespan.
	for i := 1; i < len(front); i++ {
		for j := i; j > 0 && front[j].Makespan < front[j-1].Makespan; j-- {
			front[j], front[j-1] = front[j-1], front[j]
		}
	}
	return front, nil
}

// DeviceHistogram counts tasks per device of a mapping (virtual tasks
// excluded); a small reporting helper shared by CLI and examples.
func DeviceHistogram(g *graph.DAG, m mapping.Mapping) []int {
	max := 0
	for _, d := range m {
		if d > max {
			max = d
		}
	}
	h := make([]int, max+1)
	for v, d := range m {
		if !g.Task(graph.NodeID(v)).Virtual {
			h[d]++
		}
	}
	return h
}
