package model

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"spmap/internal/gen"
	"spmap/internal/graph"
	"spmap/internal/mapping"
	"spmap/internal/platform"
)

// twoDevicePlatform returns a simple deterministic platform for hand
// computations: one single-slot CPU at 1e9 ops/s (1 lane) and one
// streaming spatial FPGA at 1e9 base with area 100, links 1e9 B/s with
// zero latency.
func twoDevicePlatform() *platform.Platform {
	return &platform.Platform{
		Default: 0,
		Devices: []platform.Device{
			{Name: "cpu", Kind: platform.CPU, Lanes: 1, PeakOps: 1e9, Bandwidth: 1e9},
			{Name: "fpga", Kind: platform.FPGA, Lanes: 1, PeakOps: 1e9, Streaming: true,
				Spatial: true, Area: 100, Bandwidth: 1e9},
		},
	}
}

func TestExecTimeAmdahl(t *testing.T) {
	g := graph.New(1, 0)
	g.AddTask(graph.Task{Complexity: 2, Parallelizability: 0.5, SourceBytes: 1e9})
	// CPU with 4 lanes, peak 4e9 (1e9/lane), 1 slot: work = 2e9 ops,
	// exec = W*(0.5/4e9 + 0.5/1e9) = 2e9 * (0.125e-9 + 0.5e-9) = 1.25s.
	d := platform.Device{Lanes: 4, PeakOps: 4e9, Slots: 1, Bandwidth: 1, Latency: 0}
	got := ExecTime(g, 0, &d)
	if math.Abs(got-1.25) > 1e-9 {
		t.Fatalf("exec = %v, want 1.25", got)
	}
	// Perfect parallelism: W/peak = 0.5s.
	g.Task(0).Parallelizability = 1
	if got := ExecTime(g, 0, &d); math.Abs(got-0.5) > 1e-9 {
		t.Fatalf("exec = %v, want 0.5", got)
	}
}

func TestExecTimeSlots(t *testing.T) {
	g := graph.New(1, 0)
	g.AddTask(graph.Task{Complexity: 1, Parallelizability: 1, SourceBytes: 1e9})
	d := platform.Device{Lanes: 4, PeakOps: 4e9, Slots: 2, Bandwidth: 1}
	// Slot peak = 2e9 => 0.5s.
	if got := ExecTime(g, 0, &d); math.Abs(got-0.5) > 1e-9 {
		t.Fatalf("exec = %v, want 0.5", got)
	}
}

func TestExecTimeStreaming(t *testing.T) {
	g := graph.New(1, 0)
	g.AddTask(graph.Task{Complexity: 1, Streamability: 4, SourceBytes: 1e9})
	d := platform.Device{Lanes: 1, PeakOps: 1e9, Streaming: true, Bandwidth: 1}
	// W/(peak*stream) = 1e9/(4e9) = 0.25s.
	if got := ExecTime(g, 0, &d); math.Abs(got-0.25) > 1e-9 {
		t.Fatalf("exec = %v, want 0.25", got)
	}
}

func TestExecTimeVirtualFree(t *testing.T) {
	g := graph.New(1, 0)
	g.AddTask(graph.Task{Complexity: 5, Virtual: true, SourceBytes: 1e9})
	d := platform.Device{Lanes: 1, PeakOps: 1e9, Bandwidth: 1}
	if got := ExecTime(g, 0, &d); got != 0 {
		t.Fatalf("virtual task exec = %v, want 0", got)
	}
}

func TestTransferTime(t *testing.T) {
	p := platform.Reference()
	if got := p.TransferTime(0, 0, 1e9); got != 0 {
		t.Fatalf("co-located transfer = %v, want 0", got)
	}
	got := p.TransferTime(0, 1, 1.5e9)
	want := p.Devices[0].Latency + p.Devices[1].Latency + 1.5e9/p.Devices[1].Bandwidth
	if math.Abs(got-want) > 1e-12 {
		t.Fatalf("transfer = %v, want %v", got, want)
	}
	if p.TransferTime(1, 2, 1e6) <= 0 {
		t.Fatal("GPU->FPGA transfer must cost time")
	}
}

func TestMakespanChainByHand(t *testing.T) {
	// Two tasks of 1s each on the CPU, 1e9 B edge: serial, no transfer =>
	// makespan 2s. Split across CPU and FPGA: 1s + 1s transfer + exec.
	g := graph.New(2, 1)
	g.AddTask(graph.Task{Complexity: 1, Parallelizability: 0, Streamability: 1, SourceBytes: 1e9})
	g.AddTask(graph.Task{Complexity: 1, Parallelizability: 0, Streamability: 1})
	g.AddEdge(0, 1, 1e9)
	p := twoDevicePlatform()
	ev := NewEvaluator(g, p)
	base := ev.Makespan(mapping.Mapping{0, 0})
	if math.Abs(base-2) > 1e-9 {
		t.Fatalf("chain on CPU = %v, want 2", base)
	}
	split := ev.Makespan(mapping.Mapping{0, 1})
	// task0 1s, transfer 1s, task1 on fpga (stream 1): 1s => 3s.
	if math.Abs(split-3) > 1e-9 {
		t.Fatalf("split chain = %v, want 3", split)
	}
}

func TestMakespanStreamingOverlap(t *testing.T) {
	// Both tasks on the FPGA with streamability 4: task1 starts after
	// exec0/4 and finishes >= finish0 + exec1/4.
	g := graph.New(2, 1)
	g.AddTask(graph.Task{Complexity: 1, Streamability: 4, SourceBytes: 1e9})
	g.AddTask(graph.Task{Complexity: 1, Streamability: 4})
	g.AddEdge(0, 1, 1e9)
	p := twoDevicePlatform()
	ev := NewEvaluator(g, p)
	ms := ev.Makespan(mapping.Mapping{1, 1})
	// Source transfer 1s; exec = 0.25s each (stream 4). start0 = 1,
	// start1 = 1 + 0.25/4 = 1.0625; finish1 = max(1.0625+0.25,
	// 1.25+0.25/4) = 1.3125.
	if math.Abs(ms-1.3125) > 1e-9 {
		t.Fatalf("streamed chain = %v, want 1.3125", ms)
	}
	// The streamed chain must beat the non-overlapped sum (1 + 0.5).
	if ms >= 1.5 {
		t.Fatal("streaming must overlap execution")
	}
}

func TestMakespanContention(t *testing.T) {
	// Two independent 1s tasks on a 1-slot CPU serialize (2s); on a
	// 2-slot CPU they run concurrently (1s each slot at half peak => 2s
	// each? no: slots partition peak, so exec doubles).
	g := graph.New(2, 0)
	g.AddTask(graph.Task{Complexity: 1, Parallelizability: 0, SourceBytes: 1e9})
	g.AddTask(graph.Task{Complexity: 1, Parallelizability: 0, SourceBytes: 1e9})
	p := twoDevicePlatform()
	ev := NewEvaluator(g, p)
	ms := ev.Makespan(mapping.Mapping{0, 0})
	if math.Abs(ms-2) > 1e-9 {
		t.Fatalf("two tasks on 1-slot CPU = %v, want 2 (serialized)", ms)
	}
}

func TestFeasibility(t *testing.T) {
	g := graph.New(2, 0)
	g.AddTask(graph.Task{Complexity: 1, Area: 80, SourceBytes: 1})
	g.AddTask(graph.Task{Complexity: 1, Area: 80, SourceBytes: 1})
	p := twoDevicePlatform()
	ev := NewEvaluator(g, p)
	if !ev.Feasible(mapping.Mapping{1, 0}) {
		t.Fatal("single task within area must be feasible")
	}
	if ev.Feasible(mapping.Mapping{1, 1}) {
		t.Fatal("160 area on a 100-area FPGA must be infeasible")
	}
	if ms := ev.Makespan(mapping.Mapping{1, 1}); ms != Infeasible {
		t.Fatalf("infeasible mapping makespan = %v, want Infeasible", ms)
	}
}

func TestMakespanAboveLowerBound(t *testing.T) {
	p := platform.Reference()
	f := func(seed int64, sz uint8) bool {
		n := 3 + int(sz%60)
		rng := rand.New(rand.NewSource(seed))
		g := gen.SeriesParallel(rng, n, gen.DefaultAttr())
		ev := NewEvaluator(g, p).WithSchedules(10, seed)
		lb := ev.LowerBound()
		// Any mapping's reported makespan must dominate the bound.
		for trial := 0; trial < 3; trial++ {
			m := make(mapping.Mapping, g.NumTasks())
			for i := range m {
				m[i] = rng.Intn(p.NumDevices())
			}
			m.Repair(g, p)
			if ms := ev.Makespan(m); ms < lb-1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestScheduleSetMinimum(t *testing.T) {
	// Adding random schedules can only reduce the reported makespan.
	p := platform.Reference()
	rng := rand.New(rand.NewSource(5))
	g := gen.SeriesParallel(rng, 50, gen.DefaultAttr())
	m := mapping.Baseline(g, p)
	bfsOnly := NewEvaluator(g, p).Makespan(m)
	with := NewEvaluator(g, p).WithSchedules(50, 3).Makespan(m)
	if with > bfsOnly+1e-12 {
		t.Fatalf("min over more schedules grew: %v > %v", with, bfsOnly)
	}
	if NewEvaluator(g, p).NumSchedules() != 1 {
		t.Fatal("default evaluator must have exactly the BFS schedule")
	}
	if NewEvaluator(g, p).WithSchedules(50, 3).NumSchedules() != 51 {
		t.Fatal("WithSchedules(50) must yield 51 schedules")
	}
}

func TestDeterminism(t *testing.T) {
	p := platform.Reference()
	rng := rand.New(rand.NewSource(9))
	g := gen.SeriesParallel(rng, 40, gen.DefaultAttr())
	m := mapping.New(g.NumTasks(), 0)
	for i := range m {
		if i%3 == 0 {
			m[i] = 1
		}
	}
	e1 := NewEvaluator(g, p).WithSchedules(30, 7)
	e2 := NewEvaluator(g, p).WithSchedules(30, 7)
	if e1.Makespan(m) != e2.Makespan(m) {
		t.Fatal("evaluator must be deterministic for a fixed seed")
	}
}

func TestCloneSharesTableIndependentScratch(t *testing.T) {
	p := platform.Reference()
	rng := rand.New(rand.NewSource(2))
	g := gen.SeriesParallel(rng, 30, gen.DefaultAttr())
	ev := NewEvaluator(g, p).WithSchedules(10, 1)
	cl := ev.Clone()
	m := mapping.Baseline(g, p)
	a, b := ev.Makespan(m), cl.Makespan(m)
	if a != b {
		t.Fatalf("clone disagrees: %v vs %v", a, b)
	}
	done := make(chan bool)
	go func() {
		for i := 0; i < 100; i++ {
			cl.Makespan(m)
		}
		done <- true
	}()
	for i := 0; i < 100; i++ {
		ev.Makespan(m)
	}
	<-done
}

func TestEntrySourceTransfer(t *testing.T) {
	// An entry task mapped off-CPU pays for shipping its source data.
	g := graph.New(1, 0)
	g.AddTask(graph.Task{Complexity: 1, Streamability: 1, SourceBytes: 1e9})
	p := twoDevicePlatform()
	ev := NewEvaluator(g, p)
	onCPU := ev.Makespan(mapping.Mapping{0})
	onFPGA := ev.Makespan(mapping.Mapping{1})
	if math.Abs(onCPU-1) > 1e-9 {
		t.Fatalf("cpu = %v, want 1", onCPU)
	}
	if math.Abs(onFPGA-2) > 1e-9 { // 1s source transfer + 1s exec
		t.Fatalf("fpga = %v, want 2", onFPGA)
	}
}

func TestRelativeImprovement(t *testing.T) {
	p := platform.Reference()
	rng := rand.New(rand.NewSource(4))
	g := gen.SeriesParallel(rng, 20, gen.DefaultAttr())
	ev := NewEvaluator(g, p)
	base := ev.BaselineMakespan()
	if got := ev.RelativeImprovement(base); got != 0 {
		t.Fatalf("no improvement for the baseline itself, got %v", got)
	}
	if got := ev.RelativeImprovement(base * 2); got != 0 {
		t.Fatalf("deteriorations must truncate to 0, got %v", got)
	}
	if got := ev.RelativeImprovement(base / 2); math.Abs(got-0.5) > 1e-9 {
		t.Fatalf("halving the makespan = %v, want 0.5", got)
	}
}

func TestCloneWithSchedulesDoesNotAliasOrders(t *testing.T) {
	// Clone shares the orders backing array; a WithSchedules on the clone
	// must not rewrite the original's schedule set in place (regression:
	// the in-place truncate-and-append corrupted the sibling's orders and
	// desynchronized them from its compiled engine).
	p := platform.Reference()
	rng := rand.New(rand.NewSource(14))
	g := gen.SeriesParallel(rng, 40, gen.DefaultAttr())
	ev := NewEvaluator(g, p).WithSchedules(10, 1)
	before := append([][]graph.NodeID(nil), ev.orders...)
	_ = ev.Makespan(mapping.Baseline(g, p)) // compile the engine from seed-1 orders

	cl := ev.Clone()
	cl.WithSchedules(10, 2)

	for i, order := range ev.orders {
		for j, v := range order {
			if before[i][j] != v {
				t.Fatalf("order %d changed at %d after clone.WithSchedules", i, j)
			}
		}
	}
	for i := 0; i < 10; i++ {
		m := make(mapping.Mapping, g.NumTasks())
		for v := range m {
			m[v] = rng.Intn(p.NumDevices())
		}
		if got, want := ev.ReferenceMakespan(m), ev.Makespan(m); got != want {
			t.Fatalf("mapping %d: reference %v != engine %v after clone re-schedule", i, got, want)
		}
		if got, want := cl.ReferenceMakespan(m), cl.Makespan(m); got != want {
			t.Fatalf("mapping %d: clone reference %v != clone engine %v", i, got, want)
		}
	}
}
