// Package model implements the fully model-based cost function used to
// evaluate task mappings (paper §II-B, §III-A), following the modeling
// approach of Wilhelm et al. [5] with FPGA dataflow-streaming support.
//
// The evaluator simulates a list schedule of the task graph under a given
// mapping in time linear in the number of edges. The deterministic variant
// uses the breadth-first order of the graph; the reported makespan of a
// mapping is the minimum over the breadth-first schedule and a number of
// random topological schedules (paper §IV-A uses 100).
//
// Makespan evaluation delegates to the compiled kernel of package eval
// (CSR-flattened schedule set, bounded early exit, batch parallelism via
// Evaluator.Engine); MakespanOrder/ReferenceMakespan retain the
// straightforward simulation as the engine's cross-check oracle.
package model

import (
	"math"
	"math/rand"

	"spmap/internal/eval"
	"spmap/internal/graph"
	"spmap/internal/mapping"
	"spmap/internal/platform"
)

// Infeasible is the makespan reported for mappings that violate device
// area capacities.
const Infeasible = math.MaxFloat64

// Evaluator computes makespans of mappings for one (graph, platform)
// pair. It precomputes the task-by-device execution-time table and reuses
// internal scratch buffers, so a single Evaluator is not safe for
// concurrent use; create one per goroutine (via Clone) when evaluating in
// parallel.
type Evaluator struct {
	G *graph.DAG
	P *platform.Platform

	exec [][]float64 // [device][task] execution time
	bfs  []graph.NodeID
	// orders is the fixed schedule set the cost function minimizes over:
	// the BFS order plus any random topological orders added by
	// WithSchedules. The paper evaluates every mapping as the minimum
	// makespan over a breadth-first and 100 random schedules (§IV-A);
	// keeping the set fixed makes the cost function deterministic, which
	// the greedy mappers' termination guarantee relies on (§III-A).
	orders [][]graph.NodeID

	// scratch
	start, finish []float64
	free          [][]float64 // [device][slot] next-free time
	area          []float64

	// eng is the compiled evaluation engine for the current schedule set,
	// built lazily on first use and invalidated by WithSchedules. Makespan
	// evaluations delegate to it; MakespanOrder below remains the
	// straightforward reference simulation the engine is cross-checked
	// against.
	eng *eval.Engine

	// Cached pure-CPU baseline objectives, computed lazily and
	// invalidated by WithSchedules (the baseline makespan depends on the
	// schedule set). Objective sweeps construct WeightedObjective and
	// query BaselineMakespan per weight; the cache makes each
	// construction O(1) after the first instead of a full baseline
	// simulation.
	baseMs, baseEn float64
	baseValid      bool
}

func makeFree(p *platform.Platform) [][]float64 {
	free := make([][]float64, p.NumDevices())
	for d := range free {
		free[d] = make([]float64, p.Devices[d].NumSlots())
	}
	return free
}

// NewEvaluator builds an evaluator, precomputing execution times.
func NewEvaluator(g *graph.DAG, p *platform.Platform) *Evaluator {
	n := g.NumTasks()
	e := &Evaluator{
		G: g, P: p,
		exec:   make([][]float64, p.NumDevices()),
		bfs:    g.BFSOrder(),
		start:  make([]float64, n),
		finish: make([]float64, n),
		free:   makeFree(p),
		area:   make([]float64, p.NumDevices()),
	}
	for d := range e.exec {
		e.exec[d] = make([]float64, n)
		for v := 0; v < n; v++ {
			e.exec[d][v] = ExecTime(g, graph.NodeID(v), &p.Devices[d])
		}
	}
	e.orders = [][]graph.NodeID{e.bfs}
	return e
}

// WithSchedules fixes the evaluator's schedule set to the BFS order plus
// nRandom random topological orders drawn deterministically from seed,
// and returns the evaluator. The paper's evaluation protocol uses
// nRandom = 100 (§IV-A).
func (e *Evaluator) WithSchedules(nRandom int, seed int64) *Evaluator {
	// Build a fresh slice rather than truncating in place: clones share
	// the orders backing array, and appending over it would silently
	// rewrite a sibling evaluator's schedule set.
	orders := make([][]graph.NodeID, 0, nRandom+1)
	orders = append(orders, e.bfs)
	rng := rand.New(rand.NewSource(seed))
	for i := 0; i < nRandom; i++ {
		orders = append(orders, e.G.RandomTopoOrder(rng.Intn))
	}
	e.orders = orders
	e.eng = nil // schedule set changed: recompile on next use
	e.baseValid = false
	return e
}

// baselineObjectives returns the cached (makespan, energy) of the
// pure-CPU baseline mapping, computing both on first use.
func (e *Evaluator) baselineObjectives() (baseMs, baseEn float64) {
	if !e.baseValid {
		base := mapping.Baseline(e.G, e.P)
		e.baseMs = e.Makespan(base)
		e.baseEn = e.Energy(base)
		e.baseValid = true
	}
	return e.baseMs, e.baseEn
}

// Engine returns the compiled evaluation engine for the evaluator's
// current schedule set, building it on first use. The engine shares the
// evaluator's cost semantics (bit-identical makespans) but is safe for
// concurrent use and exposes cutoff-bounded and batch evaluation; see
// package eval.
func (e *Evaluator) Engine() *eval.Engine {
	if e.eng == nil {
		e.eng = eval.NewEngine(e.G, e.P, e.orders, eval.Options{})
	}
	return e.eng
}

// WithEngine installs eng as the evaluator's engine and returns the
// evaluator. Every mapper that evaluates through this evaluator (all of
// them — Makespan delegates to the engine) then uses eng; the portfolio
// runner uses this to put one memoizing cached engine behind every
// racing mapper. eng must derive from this evaluator's own Engine (same
// kernel — e.g. Engine().WithCache(...).WithWorkers(...)): makespans
// must stay bit-identical to the evaluator's schedule set. WithSchedules
// discards the installed engine along with the schedule set.
func (e *Evaluator) WithEngine(eng *eval.Engine) *Evaluator {
	e.eng = eng
	return e
}

// NumSchedules returns the size of the fixed schedule set.
func (e *Evaluator) NumSchedules() int { return len(e.orders) }

// Clone returns an evaluator sharing the immutable execution table but
// with private scratch buffers, for use from another goroutine.
func (e *Evaluator) Clone() *Evaluator {
	n := e.G.NumTasks()
	return &Evaluator{
		G: e.G, P: e.P, exec: e.exec, bfs: e.bfs, orders: e.orders,
		start: make([]float64, n), finish: make([]float64, n),
		free: makeFree(e.P), area: make([]float64, e.P.NumDevices()),
		eng:    e.eng, // the engine is immutable and concurrency-safe
		baseMs: e.baseMs, baseEn: e.baseEn, baseValid: e.baseValid,
	}
}

// ExecTime returns the modeled execution time of task v on device d.
//
// Work is complexity x input bytes. Non-streaming devices follow Amdahl's
// law over the device's lanes: t = W*(p/Peak + (1-p)/lane). Streaming
// (FPGA-like) devices run a task as a pipeline at Peak x streamability.
// Virtual tasks are free everywhere.
func ExecTime(g *graph.DAG, v graph.NodeID, d *platform.Device) float64 {
	return eval.ExecTime(g, v, d)
}

// Exec returns the precomputed execution time of task v on device d.
func (e *Evaluator) Exec(v graph.NodeID, d int) float64 { return e.exec[d][v] }

// BestExec returns the fastest execution time of v across all devices.
func (e *Evaluator) BestExec(v graph.NodeID) float64 {
	best := e.exec[0][v]
	for d := 1; d < len(e.exec); d++ {
		if e.exec[d][v] < best {
			best = e.exec[d][v]
		}
	}
	return best
}

// streamFactor returns the pipelining overlap factor sigma >= 1 for edge
// (u,v) when co-mapped on a streaming device, or 0 if the pair cannot
// stream.
func (e *Evaluator) streamFactor(u, v graph.NodeID) float64 {
	tu, tv := e.G.Task(u), e.G.Task(v)
	su, sv := tu.Streamability, tv.Streamability
	if tu.Virtual {
		su = sv
	}
	if tv.Virtual {
		sv = su
	}
	s := math.Min(su, sv)
	if s < 1 {
		return 0
	}
	return s
}

// StreamFactor exposes the pipelining overlap factor of edge (u,v): the
// sigma >= 1 used by the simulator when the pair is co-mapped on a
// streaming device, or 0 if the pair cannot stream. The lower-bound
// layer (package bounds) uses it to build streaming-aware path bounds
// with exactly the simulator's semantics.
func (e *Evaluator) StreamFactor(u, v graph.NodeID) float64 { return e.streamFactor(u, v) }

// Feasible reports whether m satisfies all device area capacities.
func (e *Evaluator) Feasible(m mapping.Mapping) bool {
	for d := range e.area {
		e.area[d] = 0
	}
	overflow := false
	for v, d := range m {
		a := e.G.Task(graph.NodeID(v)).Area
		if a == 0 {
			continue
		}
		if capacity := e.P.Devices[d].Area; capacity > 0 {
			e.area[d] += a
			if e.area[d] > capacity {
				overflow = true
			}
		}
	}
	return !overflow
}

// MakespanOrder simulates a list schedule that starts tasks in the given
// topological order and returns the resulting makespan. Infeasible
// mappings yield Infeasible.
func (e *Evaluator) MakespanOrder(m mapping.Mapping, order []graph.NodeID) float64 {
	if !e.Feasible(m) {
		return Infeasible
	}
	g, p := e.G, e.P
	for d := range e.free {
		for s := range e.free[d] {
			e.free[d][s] = 0
		}
	}
	makespan := 0.0
	for _, v := range order {
		d := m[v]
		dev := &p.Devices[d]
		ready := 0.0
		if g.InDegree(v) == 0 {
			// Entry task: source data arrives from the host (default
			// device).
			if sb := g.Task(v).SourceBytes; sb > 0 {
				ready = p.TransferTime(p.Default, d, sb)
			}
		}
		var streamDrain float64 // extra finish constraint from streaming preds
		for _, ei := range g.InEdges(v) {
			ed := g.Edge(ei)
			u := ed.From
			if m[u] == d && dev.Streaming {
				if sigma := e.streamFactor(u, v); sigma > 0 {
					// Dataflow streaming: v may begin once u emits its
					// first chunk, and must drain after u finishes.
					if t := e.start[u] + e.exec[d][u]/sigma; t > ready {
						ready = t
					}
					if t := e.finish[u] + e.exec[d][v]/sigma; t > streamDrain {
						streamDrain = t
					}
					continue
				}
			}
			t := e.finish[u] + p.TransferTime(m[u], d, ed.Bytes)
			if t > ready {
				ready = t
			}
		}
		st := ready
		slot := -1
		if !dev.Spatial {
			// Earliest-free slot of the device.
			slot = 0
			for s := 1; s < len(e.free[d]); s++ {
				if e.free[d][s] < e.free[d][slot] {
					slot = s
				}
			}
			if e.free[d][slot] > st {
				st = e.free[d][slot]
			}
		}
		fin := st + e.exec[d][v]
		if streamDrain > fin {
			fin = streamDrain
		}
		e.start[v], e.finish[v] = st, fin
		if slot >= 0 {
			e.free[d][slot] = fin
		}
		if fin > makespan {
			makespan = fin
		}
	}
	return makespan
}

// Makespan returns the model makespan of m: the minimum list-schedule
// makespan over the evaluator's fixed schedule set (the BFS order alone by
// default; BFS + nRandom random orders after WithSchedules). The schedule
// set is fixed per evaluator, so the cost function is deterministic, as
// the greedy mappers' termination guarantee requires (§III-A).
//
// The evaluation runs on the compiled eval.Engine kernel (CSR-flattened
// orders with bounded early exit); the result is bit-identical to
// ReferenceMakespan.
func (e *Evaluator) Makespan(m mapping.Mapping) float64 {
	return e.Engine().Makespan(m)
}

// MakespanCutoff is Makespan with bounded early exit against the caller's
// cutoff: the result is exact when <= cutoff, otherwise it is only a
// certificate (and lower bound) that the makespan exceeds the cutoff.
// Search loops pass their incumbent to reject non-improving candidates
// cheaply.
func (e *Evaluator) MakespanCutoff(m mapping.Mapping, cutoff float64) float64 {
	return e.Engine().MakespanCutoff(m, cutoff)
}

// ReferenceMakespan computes Makespan with the retained straightforward
// per-order simulation (no kernel, no early exit). It exists as the
// cross-check oracle for the compiled engine and for schedule inspection;
// production paths use Makespan.
func (e *Evaluator) ReferenceMakespan(m mapping.Mapping) float64 {
	best := e.MakespanOrder(m, e.orders[0])
	if best == Infeasible {
		return best
	}
	for _, order := range e.orders[1:] {
		if ms := e.MakespanOrder(m, order); ms < best {
			best = ms
		}
	}
	return best
}

// DeterministicMakespan evaluates only the breadth-first schedule,
// regardless of the configured schedule set.
func (e *Evaluator) DeterministicMakespan(m mapping.Mapping) float64 {
	return e.MakespanOrder(m, e.bfs)
}

// BaselineMakespan returns the makespan of the pure-CPU (default
// device) mapping under the evaluator's schedule set, cached after the
// first call (experiment sweeps query it once per mapper run).
func (e *Evaluator) BaselineMakespan() float64 {
	ms, _ := e.baselineObjectives()
	return ms
}

// TaskTimes exposes the per-task start and finish times of the most recent
// MakespanOrder call (for schedule inspection and examples). The returned
// slices are owned by the evaluator.
func (e *Evaluator) TaskTimes() (start, finish []float64) { return e.start, e.finish }

// LowerBound returns a mapping-independent makespan lower bound: the
// critical path using each task's fastest device, ignoring transfers.
func (e *Evaluator) LowerBound() float64 {
	return e.G.CriticalPathWork(func(v graph.NodeID) float64 { return e.BestExec(v) })
}

// RelativeImprovement computes the paper's quality metric for a mapping
// with the given reported makespan: the positive relative improvement over
// the pure-CPU baseline, truncated at zero (§IV-A).
func (e *Evaluator) RelativeImprovement(makespan float64) float64 {
	base := e.BaselineMakespan()
	if base <= 0 || makespan >= base {
		return 0
	}
	return (base - makespan) / base
}
