package spmap_test

// Golden equivalence tests: the evaluation-engine refactor must not
// change any mapper output. The golden rows below were captured from the
// pre-engine implementation (straightforward per-order simulation, no
// early exit, serial evaluation) for fixed seeds; the current code must
// reproduce every mapping and every makespan bit-for-bit.

import (
	"fmt"
	"math"
	"math/rand"
	"testing"

	"spmap/internal/gen"
	"spmap/internal/mappers/decomp"
	"spmap/internal/mappers/ga"
	"spmap/internal/mappers/localsearch"
	"spmap/internal/mapping"
	"spmap/internal/model"
	"spmap/internal/platform"
	"spmap/internal/portfolio"
	"spmap/internal/sp"
)

type goldenRow struct {
	seed int64
	n    int
	// mappings as device-digit strings
	singleBasic, spFirstFit, spGamma2, genetic string
	// float64 bit patterns of the result makespans and the baseline
	msSingleBasic, msSPFirstFit, msSPGamma2, msGenetic, msBaseline uint64
	iterSingleBasic, iterSPFirstFit, iterSPGamma2                  int
	gaEvaluations                                                  int
}

// Captured from the seed implementation (pre-refactor) at 20 random
// schedules, schedule seed = graph seed.
var goldenRows = []goldenRow{
	{1, 30, "000000000000000001010010000010", "202022200002220021012220002222", "202022200002220021012220002222", "000001000000000011020000000010", 0x3fe545ffa46bb22e, 0x3fe2d6bc164ea4c7, 0x3fe2d6bc164ea4c7, 0x3fe5438a85263b13, 0x3fe5b45003386263, 4, 6, 6, 2100},
	{1, 60, "001100000000000021100010000100100000002001020021000020000000", "021220022221101000101100220001120122000100000001202001101200", "021202000001001001101100200000000002022020002001000200101222", "021101000000000100200000200000100002020022001021001221100010", 0x3ff0f3c6a2e0a6b7, 0x3ff0a18fc2c6fc44, 0x3ff073e516f4f677, 0x3ff030a6bfcd24b0, 0x3ff517db1239e480, 14, 9, 8, 2100},
	{2, 30, "000000000000000000000000000000", "202202002022200002202020222022", "202202002022200002202020222022", "010000010000001000010100000100", 0x3febd8d9f116b54e, 0x3fe8840699459604, 0x3fe8840699459604, 0x3fe9bf0964e55b85, 0x3febd8d9f116b54e, 0, 5, 5, 2100},
	{2, 60, "000000000000000000000000000000000001000000000000000000000000", "012010202000201210210101022100220001110001210001002100021010", "012010202000201210210101022100220001110001210001002100021010", "000000000000000000000000000002000001002000000000220000000000", 0x3ff673f16c833609, 0x3ff119988fe538df, 0x3ff119988fe538df, 0x3ff64cec3af4e761, 0x3ff694349c45d61c, 1, 7, 7, 2100},
	{3, 30, "000000000000000000000000000000", "002002222022202002222200000220", "002002222022202002222200000220", "000000000000000000000000000000", 0x3fefcf390b379117, 0x3fe7a836abc50499, 0x3fe7a836abc50499, 0x3fefcf390b379117, 0x3fefcf390b379117, 0, 2, 2, 2100},
	{3, 60, "020000202020000020000002010020020200000200000000022020002000", "000202200200002000000020200000020000122020000020220000000000", "020200222020000000000000000022020000000200000000020000020000", "020000202000000000000000000002000000000000000000020000000000", 0x3ffb5dd2318b89ed, 0x3ffc1fcbc0e29751, 0x3ff977e8ebb94a43, 0x3fff708525b9e9c7, 0x4002366afc840775, 15, 4, 4, 2100},
}

func mappingString(m mapping.Mapping) string {
	s := ""
	for _, d := range m {
		s += fmt.Sprintf("%d", d)
	}
	return s
}

func TestGoldenMapperEquivalence(t *testing.T) {
	p := platform.Reference()
	for _, row := range goldenRows {
		rng := rand.New(rand.NewSource(row.seed))
		g := gen.SeriesParallel(rng, row.n, gen.DefaultAttr())
		ev := model.NewEvaluator(g, p).WithSchedules(20, row.seed)

		m1, st1, err := decomp.MapWithEvaluator(ev, decomp.Options{Strategy: decomp.SingleNode, Heuristic: decomp.Basic})
		if err != nil {
			t.Fatal(err)
		}
		m2, st2, err := decomp.MapWithEvaluator(ev, decomp.Options{Strategy: decomp.SeriesParallel, Heuristic: decomp.FirstFit})
		if err != nil {
			t.Fatal(err)
		}
		m3, st3, err := decomp.MapWithEvaluator(ev, decomp.Options{Strategy: decomp.SeriesParallel, Heuristic: decomp.GammaThreshold, Gamma: 2})
		if err != nil {
			t.Fatal(err)
		}
		check := func(what, got, want string) {
			t.Helper()
			if got != want {
				t.Errorf("seed %d n %d %s: mapping changed\n got %s\nwant %s", row.seed, row.n, what, got, want)
			}
		}
		check("MapSingleNode/Basic", mappingString(m1), row.singleBasic)
		check("MapSeriesParallel/FirstFit", mappingString(m2), row.spFirstFit)
		check("MapGammaThreshold(2)", mappingString(m3), row.spGamma2)

		checkBits := func(what string, got float64, want uint64) {
			t.Helper()
			if math.Float64bits(got) != want {
				t.Errorf("seed %d n %d %s: makespan 0x%016x, want 0x%016x",
					row.seed, row.n, what, math.Float64bits(got), want)
			}
		}
		checkBits("SingleNode/Basic", st1.Makespan, row.msSingleBasic)
		checkBits("SP/FirstFit", st2.Makespan, row.msSPFirstFit)
		checkBits("SP/Gamma2", st3.Makespan, row.msSPGamma2)
		checkBits("Baseline", ev.Makespan(mapping.Baseline(g, p)), row.msBaseline)

		if st1.Iterations != row.iterSingleBasic || st2.Iterations != row.iterSPFirstFit || st3.Iterations != row.iterSPGamma2 {
			t.Errorf("seed %d n %d: iteration counts (%d,%d,%d) changed from (%d,%d,%d)",
				row.seed, row.n, st1.Iterations, st2.Iterations, st3.Iterations,
				row.iterSingleBasic, row.iterSPFirstFit, row.iterSPGamma2)
		}
	}
}

// TestGoldenGeneticEquivalence pins the GA (the slowest of the golden
// mappers) separately, guarded like the slow experiments/milp sweeps.
func TestGoldenGeneticEquivalence(t *testing.T) {
	if testing.Short() {
		t.Skip("GA golden sweep is slow")
	}
	p := platform.Reference()
	for _, row := range goldenRows {
		rng := rand.New(rand.NewSource(row.seed))
		g := gen.SeriesParallel(rng, row.n, gen.DefaultAttr())
		ev := model.NewEvaluator(g, p).WithSchedules(20, row.seed)
		m, st := ga.MapWithEvaluator(ev, ga.Options{Generations: 20, Seed: row.seed})
		if got := mappingString(m); got != row.genetic {
			t.Errorf("seed %d n %d MapGenetic: mapping changed\n got %s\nwant %s", row.seed, row.n, got, row.genetic)
		}
		if math.Float64bits(st.Makespan) != row.msGenetic {
			t.Errorf("seed %d n %d Genetic: makespan 0x%016x, want 0x%016x",
				row.seed, row.n, math.Float64bits(st.Makespan), row.msGenetic)
		}
		if st.Evaluations != row.gaEvaluations {
			t.Errorf("seed %d n %d: GA evaluations %d, want %d", row.seed, row.n, st.Evaluations, row.gaEvaluations)
		}
	}
}

// localsearchGoldenRow pins the stochastic local-search mappers on the
// three seed graphs (captured at Budget 3000 / Refine budget 1500, 20
// random schedules, schedule seed = graph seed). Any drift in the RNG
// stream, the neighborhood construction, the acceptance rule or the
// engine's bit-exactness shows up here.
type localsearchGoldenRow struct {
	seed                            int64
	anneal, hillclimb, refine       string // device-digit mappings
	msAnneal, msHillclimb, msRefine uint64
	evalAnneal, movesAnneal         int
	evalHC, movesHC                 int
	evalRefine, movesRefine         int
}

var localsearchGoldenRows = []localsearchGoldenRow{
	{1, "202022200002220021012220002222", "202022200002220020002220002222", "002020222222220021002221002220",
		0x3fe2d6bc164ea4c7, 0x3fe2d6bc164ea4c7, 0x3fe2205c19cd6aaf,
		3000, 134, 2917, 11, 1500, 59},
	{2, "212212012122201002212121222122", "212212012122201002212121222122", "212212012122201002212121222122",
		0x3fe48f0b5c7eb985, 0x3fe48f0b5c7eb985, 0x3fe48f0b5c7eb985,
		3000, 48, 2923, 12, 1500, 33},
	{3, "200022000200202200222220220002", "002002022022202002222200200220", "002002222022202002222200000220",
		0x3fec598b9995df6f, 0x3fe731fd8c40c76d, 0x3fe7a836abc50499,
		3000, 173, 2999, 11, 1500, 82},
}

// TestGoldenLocalSearch pins the local-search mappers' outputs,
// makespans (as float bit patterns) and effort counters. Guarded like
// the GA golden: the full run exercises 3 x (3000 + 3000 + 1500)
// engine evaluations.
func TestGoldenLocalSearch(t *testing.T) {
	if testing.Short() {
		t.Skip("local-search golden sweep is slow")
	}
	p := platform.Reference()
	for _, row := range localsearchGoldenRows {
		rng := rand.New(rand.NewSource(row.seed))
		g := gen.SeriesParallel(rng, 30, gen.DefaultAttr())
		ev := model.NewEvaluator(g, p).WithSchedules(20, row.seed)

		ma, sa, err := localsearch.MapWithEvaluator(ev, localsearch.Options{
			Algorithm: localsearch.Anneal, Seed: row.seed, Budget: 3000,
		})
		if err != nil {
			t.Fatal(err)
		}
		mh, sh, err := localsearch.MapWithEvaluator(ev, localsearch.Options{
			Algorithm: localsearch.HillClimb, Seed: row.seed, Budget: 3000,
		})
		if err != nil {
			t.Fatal(err)
		}
		md, _, err := decomp.MapWithEvaluator(ev, decomp.Options{
			Strategy: decomp.SeriesParallel, Heuristic: decomp.FirstFit,
		})
		if err != nil {
			t.Fatal(err)
		}
		mr, sr, err := localsearch.Refine(ev, md, localsearch.Options{Seed: row.seed, Budget: 1500})
		if err != nil {
			t.Fatal(err)
		}

		check := func(what, got, want string) {
			t.Helper()
			if got != want {
				t.Errorf("seed %d %s: mapping changed\n got %s\nwant %s", row.seed, what, got, want)
			}
		}
		check("Anneal", mappingString(ma), row.anneal)
		check("HillClimb", mappingString(mh), row.hillclimb)
		check("SPFF+Refine", mappingString(mr), row.refine)

		checkBits := func(what string, got float64, want uint64) {
			t.Helper()
			if math.Float64bits(got) != want {
				t.Errorf("seed %d %s: makespan 0x%016x, want 0x%016x", row.seed, what, math.Float64bits(got), want)
			}
		}
		checkBits("Anneal", sa.Makespan, row.msAnneal)
		checkBits("HillClimb", sh.Makespan, row.msHillclimb)
		checkBits("SPFF+Refine", sr.Makespan, row.msRefine)

		type effort struct{ evals, moves int }
		for _, e := range []struct {
			what      string
			got, want effort
		}{
			{"Anneal", effort{sa.Evaluations, sa.Moves}, effort{row.evalAnneal, row.movesAnneal}},
			{"HillClimb", effort{sh.Evaluations, sh.Moves}, effort{row.evalHC, row.movesHC}},
			{"SPFF+Refine", effort{sr.Evaluations, sr.Moves}, effort{row.evalRefine, row.movesRefine}},
		} {
			if e.got != e.want {
				t.Errorf("seed %d %s: effort %+v, want %+v", row.seed, e.what, e.got, e.want)
			}
		}
	}
}

// portfolioGoldenRow pins the portfolio racer's output (captured from
// the pre-certificate implementation at Budget 3000, Workers 2, 20
// random schedules, schedule seed = graph seed). The certificate layer
// added on top computes its bounds outside the evaluation stream, so a
// run with GapTarget unset must keep reproducing these rows
// bit-for-bit.
type portfolioGoldenRow struct {
	seed        int64
	n           int
	mapping     string
	msBits      uint64
	evaluations int
}

var portfolioGoldenRows = []portfolioGoldenRow{
	{1, 30, "202022200002220021012220002222", 0x3fe2d6bc164ea4c7, 2830},
	{2, 40, "0120002000002012202000000220002000000200", 0x3ff3ebb021f84b65, 2908},
	{3, 35, "00220122202220200222221011022022200", 0x3fea5bd8f83c16bb, 2875},
}

// TestGoldenPortfolio proves the gap-certificate layer changed nothing
// when no gap target is armed: mapping, makespan bits and evaluation
// counts match the pre-certificate captures, while the run still
// carries a certificate and never fires the early stop.
func TestGoldenPortfolio(t *testing.T) {
	p := platform.Reference()
	for _, row := range portfolioGoldenRows {
		rng := rand.New(rand.NewSource(row.seed))
		g := gen.SeriesParallel(rng, row.n, gen.DefaultAttr())
		ev := model.NewEvaluator(g, p).WithSchedules(20, row.seed)
		m, st, err := portfolio.MapWithEvaluator(ev, portfolio.Options{
			Seed: row.seed, Budget: 3000, Workers: 2,
		})
		if err != nil {
			t.Fatal(err)
		}
		if got := mappingString(m); got != row.mapping {
			t.Errorf("seed %d n %d: mapping changed\n got %s\nwant %s", row.seed, row.n, got, row.mapping)
		}
		if math.Float64bits(st.Makespan) != row.msBits {
			t.Errorf("seed %d n %d: makespan 0x%016x, want 0x%016x",
				row.seed, row.n, math.Float64bits(st.Makespan), row.msBits)
		}
		if st.Evaluations != row.evaluations {
			t.Errorf("seed %d n %d: evaluations %d, want %d", row.seed, row.n, st.Evaluations, row.evaluations)
		}
		if st.GapStop || st.BudgetSaved != 0 {
			t.Errorf("seed %d n %d: unarmed run fired the gap stop: %+v", row.seed, row.n, st)
		}
		if !(st.LowerBound > 0 && st.LowerBound <= st.Makespan) || st.BoundName == "" {
			t.Errorf("seed %d n %d: missing certificate: bound %v (%q)", row.seed, row.n, st.LowerBound, st.BoundName)
		}
	}
}

// TestEngineBackedBasicMatchesReferenceObjective runs the Basic mapper
// twice per cut policy on a non-series-parallel graph: once on the
// engine's batched early-exit path and once forced through the serial
// path with the retained reference simulation as a custom objective. The
// mappings, iteration counts, and final makespans must agree exactly —
// the engine path may only be faster, never different.
func TestEngineBackedBasicMatchesReferenceObjective(t *testing.T) {
	if testing.Short() {
		t.Skip("cross-policy equivalence sweep is slow")
	}
	p := platform.Reference()
	for _, policy := range []sp.CutPolicy{sp.CutRandom, sp.CutSmallest, sp.CutLargest} {
		rng := rand.New(rand.NewSource(42))
		g := gen.AlmostSeriesParallel(rng, 40, 20, gen.DefaultAttr())
		ev := model.NewEvaluator(g, p).WithSchedules(10, 4)
		opts := decomp.Options{
			Strategy:  decomp.SeriesParallel,
			Heuristic: decomp.Basic,
			SP:        sp.Options{Policy: policy, Seed: 9},
		}
		mEngine, stEngine, err := decomp.MapWithEvaluator(ev, opts)
		if err != nil {
			t.Fatal(err)
		}
		ref := opts
		ref.Objective = func(m mapping.Mapping) float64 { return ev.ReferenceMakespan(m) }
		mRef, stRef, err := decomp.MapWithEvaluator(ev, ref)
		if err != nil {
			t.Fatal(err)
		}
		if !mEngine.Equal(mRef) {
			t.Fatalf("policy %v: engine-backed mapping differs from reference-objective mapping", policy)
		}
		if stEngine.Makespan != stRef.Makespan || stEngine.Iterations != stRef.Iterations {
			t.Fatalf("policy %v: stats diverged: engine %+v vs reference %+v", policy, stEngine, stRef)
		}
	}
}
