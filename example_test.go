package spmap_test

import (
	"fmt"
	"math/rand"

	"spmap"
)

// ExampleMapSeriesParallel maps a streamable chain; the whole chain ends
// up on the FPGA, which single-node mapping cannot achieve.
func ExampleMapSeriesParallel() {
	g := spmap.NewDAG()
	var prev spmap.NodeID = -1
	for i := 0; i < 4; i++ {
		t := spmap.Task{Complexity: 8, Parallelizability: 0.5, Streamability: 12, Area: 8}
		if i == 0 {
			t.SourceBytes = 100e6
		}
		v := g.AddTask(t)
		if prev >= 0 {
			g.AddEdge(prev, v, 100e6)
		}
		prev = v
	}
	p := spmap.ReferencePlatform()
	m, _, err := spmap.MapSeriesParallel(g, p, spmap.FirstFit)
	if err != nil {
		panic(err)
	}
	onFPGA := 0
	for _, d := range m {
		if p.Devices[d].Kind == spmap.FPGA {
			onFPGA++
		}
	}
	fmt.Printf("%d of 4 tasks streamed on the FPGA\n", onFPGA)
	// Output: 4 of 4 tasks streamed on the FPGA
}

// ExampleIsSeriesParallel distinguishes the paper's Fig. 1 (SP) and
// Fig. 2 (non-SP) example graphs.
func ExampleIsSeriesParallel() {
	fig1 := spmap.NewDAG()
	for i := 0; i < 6; i++ {
		fig1.AddTask(spmap.Task{})
	}
	for _, e := range [][2]spmap.NodeID{{0, 1}, {1, 2}, {2, 3}, {1, 3}, {3, 5}, {0, 4}, {4, 5}} {
		fig1.AddEdge(e[0], e[1], 1)
	}
	fmt.Println("fig1:", spmap.IsSeriesParallel(fig1))

	fig2 := spmap.NewDAG()
	for i := 0; i < 6; i++ {
		fig2.AddTask(spmap.Task{})
	}
	for _, e := range [][2]spmap.NodeID{{0, 1}, {0, 4}, {1, 4}, {1, 2}, {2, 3}, {1, 3}, {3, 5}, {4, 5}} {
		fig2.AddEdge(e[0], e[1], 1)
	}
	fmt.Println("fig2:", spmap.IsSeriesParallel(fig2))
	// Output:
	// fig1: true
	// fig2: false
}

// ExampleRefine polishes a decomposition mapping with local-search
// refinement. Refine never returns a worse mapping than its input, and
// for a fixed Seed the result is identical for any Workers value.
func ExampleRefine() {
	g := spmap.RandomSeriesParallel(rand.New(rand.NewSource(5)), 40)
	p := spmap.ReferencePlatform()

	m, _, err := spmap.MapSeriesParallel(g, p, spmap.FirstFit)
	if err != nil {
		panic(err)
	}
	ev := spmap.NewEvaluator(g, p).WithSchedules(20, 1)
	refined, stats, err := spmap.Refine(ev, m, spmap.LocalSearchOptions{
		Seed: 1, Budget: 4000, Workers: 2,
	})
	if err != nil {
		panic(err)
	}
	fmt.Printf("never worse: %v, evaluations <= budget: %v\n",
		ev.Makespan(refined) <= ev.Makespan(m), stats.Evaluations <= 4000)
	// Output: never worse: true, evaluations <= budget: true
}

// ExampleMapPareto maps under the two-objective (makespan, energy)
// model: the returned ε-dominance front spans the time/energy
// trade-off, is mutually non-dominated, and — because the sweep's
// pure-time weight runs the plain single-objective search — never
// starts worse than the makespan optimum the same budget finds alone.
// For a fixed Seed the front is identical for any Workers value.
func ExampleMapPareto() {
	g := spmap.RandomSeriesParallel(rand.New(rand.NewSource(5)), 40)
	p := spmap.ReferencePlatform()

	front, stats, err := spmap.MapPareto(g, p, spmap.ParetoOptions{
		Seed: 1, Budget: 5000, Workers: 2,
	})
	if err != nil {
		panic(err)
	}
	ev := spmap.NewEvaluator(g, p)
	nonDominated := true
	for i, a := range front {
		for j, b := range front {
			if i != j && b.Makespan() <= a.Makespan() && b.Energy() <= a.Energy() &&
				(b.Makespan() < a.Makespan() || b.Energy() < a.Energy()) {
				nonDominated = false
			}
		}
	}
	fastest, greenest := front.MinMakespan(), front.MinEnergy()
	fmt.Printf("non-dominated: %v, trade-off: %v, exact objectives: %v\n",
		nonDominated,
		fastest.Makespan() < greenest.Makespan() && greenest.Energy() < fastest.Energy(),
		ev.Makespan(fastest.Mapping) == fastest.Makespan() && ev.Energy(greenest.Mapping) == greenest.Energy())
	_ = stats
	// Output: non-dominated: true, trade-off: true, exact objectives: true
}

// ExampleMapPortfolio races the whole mapper portfolio (decomposition
// with refinement, HEFT/PEFT seeds, annealing, hill climbing, GA) under
// one shared evaluation budget with a shared memoizing evaluation
// cache. The result is never worse than the pure-CPU baseline and — the
// portfolio's hard contract — identical for a fixed Seed across any
// Workers value and with or without the cache. Every race also carries
// a certificate: Stats.LowerBound is a proven makespan lower bound for
// the instance and Stats.Gap the returned mapping's certified
// optimality gap ((makespan - bound)/makespan, in [0, 1]).
func ExampleMapPortfolio() {
	g := spmap.RandomSeriesParallel(rand.New(rand.NewSource(5)), 40)
	p := spmap.ReferencePlatform()

	m, stats, err := spmap.MapPortfolio(g, p, spmap.PortfolioOptions{
		Seed: 1, Budget: 4000, Workers: 2,
	})
	if err != nil {
		panic(err)
	}
	ev := spmap.NewEvaluator(g, p)
	fmt.Printf("valid: %v, beats baseline: %v, members: %d, within budget: %v\n",
		m.Validate(g, p) == nil,
		stats.Makespan < ev.BaselineMakespan(),
		len(stats.Members),
		stats.Evaluations <= 4000)
	fmt.Printf("certified: %v, gap in (0,1]: %v\n",
		stats.LowerBound > 0 && stats.LowerBound <= stats.Makespan,
		stats.Gap > 0 && stats.Gap <= 1 && stats.Gap == spmap.OptimalityGap(stats.Makespan, stats.LowerBound))
	// Output:
	// valid: true, beats baseline: true, members: 6, within budget: true
	// certified: true, gap in (0,1]: true
}

// ExampleDecompose shows the decomposition forest of a non-SP graph.
func ExampleDecompose() {
	g := spmap.RandomAlmostSeriesParallel(rand.New(rand.NewSource(1)), 30, 15)
	f, err := spmap.Decompose(g, spmap.CutSmallest, 1)
	if err != nil {
		panic(err)
	}
	fmt.Printf("trees > 1: %v, cuts > 0: %v\n", len(f.Trees) > 1, f.Cuts > 0)
	// Output: trees > 1: true, cuts > 0: true
}

// ExampleReplay runs an online scenario — a device degradation, a
// subgraph arrival and a device failure — against a live instance. The
// incumbent mapping is migrated and warm-start-repaired after every
// event; the replay trace is byte-identical for any Workers value.
func ExampleReplay() {
	g := spmap.RandomSeriesParallel(rand.New(rand.NewSource(5)), 30)
	p := spmap.ReferencePlatform()
	sc := spmap.Scenario{Events: []spmap.ScenarioEvent{
		{Time: 1, Kind: spmap.DeviceDegrade, Device: 1, SpeedScale: 0.5, BandwidthScale: 1},
		{Time: 2, Kind: spmap.TaskArrive, Tasks: 6, Seed: 77},
		{Time: 3, Kind: spmap.DeviceFail, Device: 2},
	}}
	m, stats, err := spmap.Replay(g, p, sc, spmap.OnlineOptions{
		Schedules: 10, Seed: 1, RepairBudget: 1500, Workers: 2,
	})
	if err != nil {
		panic(err)
	}
	repairedAll := true
	for _, e := range stats.Events {
		if e.Makespan > e.MigratedMakespan {
			repairedAll = false
		}
	}
	fmt.Printf("events: %d, final tasks: %d, final devices: %d, repair never worse: %v, mapping valid: %v\n",
		len(stats.Events), len(m), stats.Events[len(stats.Events)-1].Devices,
		repairedAll, len(m) == g.NumTasks()+6)
	// Output: events: 3, final tasks: 36, final devices: 2, repair never worse: true, mapping valid: true
}
