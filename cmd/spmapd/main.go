// Command spmapd is the long-running mapping service: an HTTP daemon
// holding warm per-(platform, graph, schedule-set) state — compiled
// evaluation kernels, bounded memoization caches — and coalescing
// candidate evaluations from concurrent requests into shared
// EvaluateBatch flushes.
//
// Usage:
//
//	spmapd                          # serve on 127.0.0.1:8080
//	spmapd -addr :9000 -workers 8   # custom bind and worker pool
//	spmapd -no-coalesce             # per-request evaluation (escape hatch)
//
// Endpoints (all request/response bodies are JSON; see the README):
//
//	POST /v1/map       map a graph (algo: spfirstfit, heft, portfolio, ...)
//	POST /v1/refine    improve a client-supplied mapping (anneal, hillclimb)
//	POST /v1/evaluate  makespans (optionally energies) for candidate mappings
//	POST /v1/replay    online scenario replay with warm-start repair
//	POST /v1/snapshot  capture live replay state as a content-addressed handle,
//	                   or resume a stored snapshot and apply further events
//	GET  /v1/stats     service telemetry + per-request phase timings (?format=csv)
//	GET  /healthz      liveness probe
//
// SIGINT/SIGTERM trigger a graceful shutdown: the listener closes,
// in-flight requests (and their coalesced batch flushes) drain within
// -drain, then the process exits 0.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"spmap/internal/cli"
	"spmap/internal/service"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("spmapd: ")
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	cli.Exit(run(ctx, os.Args[1:], os.Stdout, os.Stderr))
}

// run is main's testable body: it binds the listener, serves until ctx
// is cancelled (SIGINT/SIGTERM in main) and drains before returning.
func run(ctx context.Context, args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("spmapd", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		addr         = fs.String("addr", "127.0.0.1:8080", "listen address (host:port; port 0 picks a free port)")
		platformPath = fs.String("platform", "", "default platform JSON file (empty = paper's reference platform)")
		workers      = fs.Int("workers", 0, "evaluation worker pool per instance (>= 0; 0 = GOMAXPROCS; results are identical)")
		maxBatch     = fs.Int("max-batch", 128, "coalescing flush size in ops (> 0)")
		maxWait      = fs.Duration("max-wait", time.Millisecond, "coalescing flush deadline (> 0)")
		cacheEntries = fs.Int("cache-entries", 1<<18, "evaluation cache cap per instance (0 = default, < 0 disables)")
		maxInstances = fs.Int("max-instances", 32, "warm instance cap (> 0; oldest evicted first)")
		maxBody      = fs.Int64("max-body-bytes", 8<<20, "request body cap in bytes (> 0)")
		maxEvents    = fs.Int("max-scenario-events", 10_000, "event cap per replay/snapshot scenario (> 0)")
		maxSnapshots = fs.Int("max-snapshots", 64, "stored-snapshot cap (> 0; oldest evicted first)")
		noCoalesce   = fs.Bool("no-coalesce", false, "disable cross-request batch coalescing (responses are identical)")
		drainWait    = fs.Duration("drain", 10*time.Second, "graceful-shutdown drain deadline (> 0)")
	)
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return err
		}
		return cli.Usage(err)
	}
	usage := func(format string, a ...any) error {
		err := cli.Usage(fmt.Errorf(format, a...))
		fmt.Fprintf(stderr, "spmapd: %v\n", err)
		fs.Usage()
		return err
	}
	switch {
	case *workers < 0:
		return usage("-workers must be >= 0, got %d", *workers)
	case *maxBatch <= 0:
		return usage("-max-batch must be > 0, got %d", *maxBatch)
	case *maxWait <= 0:
		return usage("-max-wait must be > 0, got %s", *maxWait)
	case *maxInstances <= 0:
		return usage("-max-instances must be > 0, got %d", *maxInstances)
	case *maxBody <= 0:
		return usage("-max-body-bytes must be > 0, got %d", *maxBody)
	case *maxEvents <= 0:
		return usage("-max-scenario-events must be > 0, got %d", *maxEvents)
	case *maxSnapshots <= 0:
		return usage("-max-snapshots must be > 0, got %d", *maxSnapshots)
	case *drainWait <= 0:
		return usage("-drain must be > 0, got %s", *drainWait)
	}
	p, err := cli.ReadPlatformFile(*platformPath)
	if err != nil {
		return err
	}

	svc := service.New(service.Options{
		Platform:          p,
		MaxBatch:          *maxBatch,
		MaxWait:           *maxWait,
		Workers:           *workers,
		CacheEntries:      *cacheEntries,
		MaxBodyBytes:      *maxBody,
		MaxInstances:      *maxInstances,
		MaxScenarioEvents: *maxEvents,
		MaxSnapshots:      *maxSnapshots,
		NoCoalesce:        *noCoalesce,
	})
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	fmt.Fprintf(stdout, "listening on http://%s\n", ln.Addr())

	srv := &http.Server{Handler: svc.Handler()}
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(ln) }()

	select {
	case err := <-serveErr:
		svc.Close()
		return err
	case <-ctx.Done():
	}

	// Graceful drain: stop accepting, let in-flight requests (and the
	// coalesced flushes carrying their ops) finish, then close the
	// service so its batchers flush any remainder.
	fmt.Fprintln(stdout, "shutting down: draining in-flight requests")
	sctx, cancel := context.WithTimeout(context.Background(), *drainWait)
	defer cancel()
	shutErr := srv.Shutdown(sctx)
	svc.Close()
	<-serveErr // Serve has returned http.ErrServerClosed
	if shutErr != nil {
		return fmt.Errorf("drain: %w", shutErr)
	}
	fmt.Fprintln(stdout, "drained cleanly")
	return nil
}
