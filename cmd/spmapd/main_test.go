package main

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"math/rand"
	"net/http"
	"regexp"
	"strings"
	"sync"
	"testing"
	"time"

	"spmap/internal/cli"
	"spmap/internal/gen"
)

// syncBuffer is a goroutine-safe bytes.Buffer: run writes to it from
// the server goroutine while the test polls it.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

var listenRE = regexp.MustCompile(`listening on (http://\S+)`)

// startDaemon runs the daemon on a free port and returns its base URL
// plus the cancel that triggers graceful shutdown and the result chan.
func startDaemon(t *testing.T, extraArgs ...string) (string, *syncBuffer, context.CancelFunc, chan error) {
	t.Helper()
	ctx, cancel := context.WithCancel(context.Background())
	out := &syncBuffer{}
	done := make(chan error, 1)
	args := append([]string{"-addr", "127.0.0.1:0"}, extraArgs...)
	go func() { done <- run(ctx, args, out, io.Discard) }()
	deadline := time.Now().Add(5 * time.Second)
	for {
		if m := listenRE.FindStringSubmatch(out.String()); m != nil {
			t.Cleanup(cancel)
			return m[1], out, cancel, done
		}
		select {
		case err := <-done:
			t.Fatalf("daemon exited before listening: %v\n%s", err, out.String())
		default:
		}
		if time.Now().After(deadline) {
			t.Fatalf("daemon never listened:\n%s", out.String())
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func TestServeMapAndGracefulShutdown(t *testing.T) {
	base, out, cancel, done := startDaemon(t)

	resp, err := http.Get(base + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("healthz: %d", resp.StatusCode)
	}

	g := gen.SeriesParallel(rand.New(rand.NewSource(3)), 16, gen.DefaultAttr())
	gj, _ := json.Marshal(g)
	body, _ := json.Marshal(map[string]any{"graph": json.RawMessage(gj), "algo": "spfirstfit", "schedules": 10})
	pr, err := http.Post(base+"/v1/map", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer pr.Body.Close()
	pb, _ := io.ReadAll(pr.Body)
	if pr.StatusCode != 200 {
		t.Fatalf("map: %d %s", pr.StatusCode, pb)
	}
	var mr struct {
		Mapping  []int   `json:"mapping"`
		Makespan float64 `json:"makespan"`
	}
	if err := json.Unmarshal(pb, &mr); err != nil || len(mr.Mapping) != g.NumTasks() || !(mr.Makespan > 0) {
		t.Fatalf("map response: %s (err %v)", pb, err)
	}

	// Graceful shutdown drains and reports it.
	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("shutdown: %v\n%s", err, out.String())
		}
	case <-time.After(15 * time.Second):
		t.Fatalf("daemon did not shut down:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "drained cleanly") {
		t.Fatalf("no drain confirmation:\n%s", out.String())
	}
}

func TestShutdownDrainsInFlightRequests(t *testing.T) {
	base, out, cancel, done := startDaemon(t)

	// A slow request in flight when SIGTERM lands must still complete.
	g := gen.SeriesParallel(rand.New(rand.NewSource(5)), 24, gen.DefaultAttr())
	gj, _ := json.Marshal(g)
	body, _ := json.Marshal(map[string]any{
		"graph": json.RawMessage(gj), "algo": "anneal", "schedules": 20, "budget": 5000,
	})
	type result struct {
		status int
		err    error
	}
	res := make(chan result, 1)
	go func() {
		resp, err := http.Post(base+"/v1/map", "application/json", bytes.NewReader(body))
		if err != nil {
			res <- result{0, err}
			return
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		res <- result{resp.StatusCode, nil}
	}()
	time.Sleep(20 * time.Millisecond) // let the request reach the handler
	cancel()
	r := <-res
	if r.err != nil || r.status != 200 {
		t.Fatalf("in-flight request not drained: status %d err %v\n%s", r.status, r.err, out.String())
	}
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("shutdown: %v", err)
		}
	case <-time.After(15 * time.Second):
		t.Fatalf("daemon did not shut down:\n%s", out.String())
	}
}

func TestRunUsageErrors(t *testing.T) {
	cases := [][]string{
		{"-bogus"},
		{"-workers", "-1"},
		{"-max-batch", "0"},
		{"-max-wait", "0s"},
		{"-max-instances", "0"},
		{"-max-body-bytes", "0"},
		{"-max-scenario-events", "0"},
		{"-max-snapshots", "-1"},
		{"-drain", "0s"},
	}
	for _, args := range cases {
		err := run(context.Background(), args, io.Discard, io.Discard)
		if !cli.IsUsage(err) {
			t.Errorf("run(%v) = %v, want usage error", args, err)
		}
	}
	if err := run(context.Background(), []string{"-platform", "/nonexistent.json"}, io.Discard, io.Discard); err == nil || cli.IsUsage(err) {
		t.Errorf("missing platform file: %v, want non-usage error", err)
	}
	if err := run(context.Background(), []string{"-addr", "256.0.0.1:bad"}, io.Discard, io.Discard); err == nil {
		t.Errorf("bad listen address accepted")
	}
}

func TestHelpExitsZero(t *testing.T) {
	var stderr bytes.Buffer
	err := run(context.Background(), []string{"-h"}, io.Discard, &stderr)
	if !cli.IsUsage(err) && err == nil {
		t.Fatalf("-h: %v", err)
	}
	if code, fatal := exitProbe(err); code != 0 || fatal {
		t.Fatalf("-h maps to exit (%d, fatal=%v), want (0, false); stderr:\n%s", code, fatal, stderr.String())
	}
	if !strings.Contains(stderr.String(), "-max-batch") {
		t.Fatalf("usage not printed:\n%s", stderr.String())
	}
}

// exitProbe mirrors cli.Exit's mapping without exiting the test binary.
func exitProbe(err error) (int, bool) {
	switch {
	case err == nil:
		return 0, false
	case err.Error() == "flag: help requested":
		return 0, false
	case cli.IsUsage(err):
		return 2, false
	default:
		return 1, true
	}
}

func TestTwoDaemonsIndependentPorts(t *testing.T) {
	a, _, _, _ := startDaemon(t)
	b, _, _, _ := startDaemon(t)
	if a == b {
		t.Fatalf("both daemons on %s", a)
	}
	for _, base := range []string{a, b} {
		resp, err := http.Get(base + "/healthz")
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != 200 {
			t.Fatalf("%s/healthz: %d", base, resp.StatusCode)
		}
	}
}
