// Command spmap-bench reproduces the paper's evaluation: one experiment
// per figure and table (§IV). By default it runs a quick profile that
// preserves every series' shape; -paper selects the full protocol (30
// graphs per point, 100 random schedules, 500 GA generations, 5-minute
// MILP budgets).
//
// Usage:
//
//	spmap-bench -exp fig4            # one experiment
//	spmap-bench -exp all             # fig3 fig4 fig5 fig6 fig7 table1
//	spmap-bench -exp ablation        # extension: cut policies, gamma sweep
//	spmap-bench -exp localsearch     # extension: GA vs anneal/hill-climb vs decomp+refine
//	spmap-bench -exp pareto          # extension: multi-objective sweep vs NSGA-II fronts
//	spmap-bench -exp portfolio       # extension: portfolio racing vs single mappers
//	spmap-bench -exp online          # extension: warm-start repair vs cold re-map per event
//	spmap-bench -exp incremental     # extension: incremental vs resume vs full move throughput
//	spmap-bench -exp fleet           # extension: sharded replay fleets with checkpoint/resume
//	spmap-bench -exp fleet -store d  # persistent checkpoints: kill mid-run, re-run, traces verified
//	spmap-bench -exp robust          # extension: uncertainty-aware robust vs nominal under degradation
//	spmap-bench -exp certify         # extension: certified optimality gaps, gap-adaptive termination
//	spmap-bench -exp fig3 -paper     # paper-scale protocol
//	spmap-bench -exp incremental -cpuprofile cpu.pprof -memprofile mem.pprof
//
// Unknown -exp names, negative numeric overrides, an unwritable -csv
// directory and uncreatable -cpuprofile/-memprofile paths exit with
// status 2 and a usage message before any experiment runs, instead of
// producing partial or garbage output.
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"strings"
	"time"

	"spmap/internal/cli"
	"spmap/internal/experiments"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("spmap-bench: ")
	cli.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// isUsageError classifies option-validation failures (exit status 2).
func isUsageError(err error) bool { return cli.IsUsage(err) }

// knownExperiments is the -exp vocabulary.
var knownExperiments = map[string]bool{
	"fig3": true, "fig4": true, "fig5": true, "fig6": true, "fig7": true,
	"table1": true, "ablation": true, "localsearch": true, "pareto": true,
	"portfolio": true, "online": true, "incremental": true, "service": true,
	"fleet": true, "robust": true, "certify": true,
}

// run is main's testable body: it parses and validates args, executes
// the experiments and writes the reports to stdout. Errors of type
// usageError (and flag parse errors, which the FlagSet reports to
// stderr itself) correspond to exit status 2.
func run(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("spmap-bench", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		exp       = fs.String("exp", "all", "experiment: fig3 fig4 fig5 fig6 fig7 table1 ablation localsearch pareto portfolio online incremental service fleet robust certify all")
		paper     = fs.Bool("paper", false, "full paper-scale protocol (slow)")
		graphs    = fs.Int("graphs", 0, "override graphs per data point (>= 0; 0 = profile default)")
		schedules = fs.Int("schedules", 0, "override random schedules in the cost function (>= 0)")
		gaGens    = fs.Int("generations", 0, "override NSGA-II generations (>= 0)")
		milpBudg  = fs.Duration("milp-budget", 0, "override MILP time limit (>= 0)")
		seed      = fs.Int64("seed", 1, "base RNG seed")
		workers   = fs.Int("workers", 0, "evaluation-engine worker pool (>= 0; 0 = GOMAXPROCS, 1 = serial; results are identical)")
		eps       = fs.Float64("eps", 0, "Pareto archive ε-grid resolution for -exp pareto (>= 0; 0 = exact front)")
		csvDir    = fs.String("csv", "", "also write <experiment>.csv files into this directory")
		addr      = fs.String("addr", "", "for -exp service: fire the load generator at a live spmapd base URL instead of in-process services")
		jsonPath  = fs.String("json", "", "for -exp service/fleet: also write the result rows as JSON to this file")
		storeDir  = fs.String("store", "", "for -exp fleet: back the resume-verify section with a persistent checkpoint directory (survives a killed process)")
		cpuProf   = fs.String("cpuprofile", "", "write a CPU profile of the experiment runs to this file")
		memProf   = fs.String("memprofile", "", "write a heap profile taken after the experiment runs to this file")
	)
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return err
		}
		// The FlagSet already reported the problem and the usage to
		// stderr; classify it for main's exit-2 path without reprinting.
		return cli.Usage(err)
	}
	usage := func(format string, a ...any) error {
		err := cli.Usage(fmt.Errorf(format, a...))
		fmt.Fprintf(stderr, "spmap-bench: %v\n", err)
		fs.Usage()
		return err
	}
	switch {
	case *graphs < 0:
		return usage("-graphs must be >= 0, got %d", *graphs)
	case *schedules < 0:
		return usage("-schedules must be >= 0, got %d", *schedules)
	case *gaGens < 0:
		return usage("-generations must be >= 0, got %d", *gaGens)
	case *milpBudg < 0:
		return usage("-milp-budget must be >= 0, got %s", *milpBudg)
	case *eps < 0:
		return usage("-eps must be >= 0, got %g", *eps)
	case *workers < 0:
		return usage("-workers must be >= 0, got %d", *workers)
	}
	names := strings.Split(*exp, ",")
	if *exp == "all" {
		names = []string{"fig3", "fig4", "fig5", "fig6", "fig7", "table1"}
	}
	hasService, hasFleet, hasCertify := false, false, false
	for i, name := range names {
		names[i] = strings.TrimSpace(name)
		if !knownExperiments[names[i]] {
			return usage("unknown experiment %q", names[i])
		}
		hasService = hasService || names[i] == "service"
		hasFleet = hasFleet || names[i] == "fleet"
		hasCertify = hasCertify || names[i] == "certify"
	}
	if *addr != "" && !hasService {
		return usage("-addr applies to -exp service only")
	}
	if *jsonPath != "" && !hasService && !hasFleet && !hasCertify {
		return usage("-json applies to -exp service, fleet and certify only")
	}
	if *storeDir != "" && !hasFleet {
		return usage("-store applies to -exp fleet only")
	}
	if *csvDir != "" {
		// Probe writability upfront: failing after hours of sweep is the
		// expensive way to learn about a typoed output directory.
		probe, err := os.CreateTemp(*csvDir, ".spmap-bench-probe-*")
		if err != nil {
			return usage("-csv directory not writable: %v", err)
		}
		probe.Close()
		os.Remove(probe.Name())
	}
	// Profile files are created before any experiment runs for the same
	// reason: a typoed path must fail in milliseconds, not after the
	// sweep. The CPU profile covers the experiment loop only (not flag
	// parsing); the heap profile is taken after the last experiment.
	if *cpuProf != "" {
		f, err := os.Create(*cpuProf)
		if err != nil {
			return usage("-cpuprofile: %v", err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			return usage("-cpuprofile: %v", err)
		}
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
		}()
	}
	var memProfFile *os.File
	if *memProf != "" {
		f, err := os.Create(*memProf)
		if err != nil {
			return usage("-memprofile: %v", err)
		}
		memProfFile = f
		defer f.Close()
	}

	cfg := experiments.Config{
		Paper:          *paper,
		GraphsPerPoint: *graphs,
		Schedules:      *schedules,
		GAGenerations:  *gaGens,
		MILPTimeLimit:  *milpBudg,
		Seed:           *seed,
		Workers:        *workers,
	}
	emitCSV := func(name string, write func(io.Writer) error) error {
		if *csvDir == "" {
			return nil
		}
		path := filepath.Join(*csvDir, name+".csv")
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		err = write(f)
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		return err
	}
	emit := func(t *experiments.Table) error {
		t.Print(stdout)
		return emitCSV(t.ID, t.WriteCSV)
	}
	for _, name := range names {
		start := time.Now()
		var err error
		switch name {
		case "fig3":
			err = emit(experiments.Fig3(cfg))
		case "fig4":
			err = emit(experiments.Fig4(cfg))
		case "fig5":
			err = emit(experiments.Fig5(cfg))
		case "fig6":
			err = emit(experiments.Fig6(cfg))
		case "fig7":
			err = emit(experiments.Fig7(cfg))
		case "table1":
			rows := experiments.Table1(cfg)
			experiments.PrintTable1(stdout, rows)
			err = emitCSV("table1", func(w io.Writer) error {
				return experiments.WriteCSVTable1(w, rows)
			})
		case "ablation":
			if err = emit(experiments.CutPolicyAblation(cfg)); err != nil {
				break
			}
			fmt.Fprintln(stdout)
			if err = emit(experiments.GammaAblation(cfg)); err != nil {
				break
			}
			fmt.Fprintln(stdout)
			err = emit(experiments.ScheduleCountAblation(cfg))
		case "localsearch":
			err = emit(experiments.LocalSearchComparison(cfg))
		case "portfolio":
			err = emit(experiments.PortfolioComparison(cfg))
		case "online":
			err = emit(experiments.OnlineComparison(cfg))
		case "incremental":
			rows := experiments.IncrementalComparison(cfg)
			experiments.PrintIncremental(stdout, rows)
			err = emitCSV("incremental", func(w io.Writer) error {
				return experiments.WriteCSVIncremental(w, rows)
			})
		case "service":
			rows := experiments.ServiceLoad(cfg, *addr)
			experiments.PrintService(stdout, rows)
			err = emitCSV("service", func(w io.Writer) error {
				return experiments.WriteCSVService(w, rows)
			})
			if err == nil && *jsonPath != "" {
				var f *os.File
				if f, err = os.Create(*jsonPath); err == nil {
					err = experiments.WriteJSONService(f, rows)
					if cerr := f.Close(); err == nil {
						err = cerr
					}
				}
			}
		case "fleet":
			var rows []experiments.FleetRow
			rows, err = experiments.FleetComparison(cfg, *storeDir)
			if rows != nil {
				experiments.PrintFleet(stdout, rows)
			}
			if err != nil {
				// The resume-verification gate failed (or the store is
				// unusable): the printed rows are diagnostics, the run is
				// not a valid benchmark.
				return err
			}
			err = emitCSV("fleet", func(w io.Writer) error {
				return experiments.WriteCSVFleet(w, rows)
			})
			if err == nil && *jsonPath != "" {
				var f *os.File
				if f, err = os.Create(*jsonPath); err == nil {
					err = experiments.WriteJSONFleet(f, rows)
					if cerr := f.Close(); err == nil {
						err = cerr
					}
				}
			}
		case "certify":
			rows := experiments.CertifyComparison(cfg)
			experiments.PrintCertify(stdout, rows)
			err = emitCSV("certify", func(w io.Writer) error {
				return experiments.WriteCSVCertify(w, rows)
			})
			if err == nil && *jsonPath != "" {
				var f *os.File
				if f, err = os.Create(*jsonPath); err == nil {
					err = experiments.WriteJSONCertify(f, rows)
					if cerr := f.Close(); err == nil {
						err = cerr
					}
				}
			}
		case "pareto":
			rows := experiments.ParetoComparisonEps(cfg, *eps)
			experiments.PrintPareto(stdout, rows)
			err = emitCSV("pareto", func(w io.Writer) error {
				return experiments.WriteCSVPareto(w, rows)
			})
		case "robust":
			rows := experiments.RobustComparison(cfg)
			experiments.PrintRobust(stdout, rows)
			if err = emitCSV("robust", func(w io.Writer) error {
				return experiments.WriteCSVRobust(w, rows)
			}); err != nil {
				break
			}
			costs := experiments.RobustCost(cfg)
			experiments.PrintRobustCost(stdout, costs)
			err = emitCSV("robust_cost", func(w io.Writer) error {
				return experiments.WriteCSVRobustCost(w, costs)
			})
		default:
			// knownExperiments and this dispatch are maintained together; a
			// name validated above but not dispatched here is a programming
			// error, not a user error.
			return fmt.Errorf("internal error: experiment %q validated but not dispatched", name)
		}
		if err != nil {
			return err
		}
		fmt.Fprintf(stdout, "\n[%s completed in %s]\n\n", name, time.Since(start).Round(time.Millisecond))
	}
	if memProfFile != nil {
		runtime.GC() // settle the heap so the profile shows retained memory
		if err := pprof.WriteHeapProfile(memProfFile); err != nil {
			return fmt.Errorf("-memprofile: %w", err)
		}
	}
	return nil
}
