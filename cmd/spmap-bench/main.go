// Command spmap-bench reproduces the paper's evaluation: one experiment
// per figure and table (§IV). By default it runs a quick profile that
// preserves every series' shape; -paper selects the full protocol (30
// graphs per point, 100 random schedules, 500 GA generations, 5-minute
// MILP budgets).
//
// Usage:
//
//	spmap-bench -exp fig4            # one experiment
//	spmap-bench -exp all             # fig3 fig4 fig5 fig6 fig7 table1
//	spmap-bench -exp ablation        # extension: cut policies, gamma sweep
//	spmap-bench -exp localsearch     # extension: GA vs anneal/hill-climb vs decomp+refine
//	spmap-bench -exp pareto          # extension: multi-objective sweep vs NSGA-II fronts
//	spmap-bench -exp portfolio       # extension: portfolio racing vs single mappers
//	spmap-bench -exp fig3 -paper     # paper-scale protocol
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"strings"
	"time"

	"spmap/internal/experiments"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("spmap-bench: ")
	var (
		exp       = flag.String("exp", "all", "experiment: fig3 fig4 fig5 fig6 fig7 table1 ablation localsearch pareto portfolio all")
		paper     = flag.Bool("paper", false, "full paper-scale protocol (slow)")
		graphs    = flag.Int("graphs", 0, "override graphs per data point")
		schedules = flag.Int("schedules", 0, "override random schedules in the cost function")
		gaGens    = flag.Int("generations", 0, "override NSGA-II generations")
		milpBudg  = flag.Duration("milp-budget", 0, "override MILP time limit")
		seed      = flag.Int64("seed", 1, "base RNG seed")
		workers   = flag.Int("workers", 0, "evaluation-engine worker pool (0 = GOMAXPROCS, 1 = serial; results are identical)")
		eps       = flag.Float64("eps", 0, "Pareto archive ε-grid resolution for -exp pareto (0 = exact front)")
		csvDir    = flag.String("csv", "", "also write <experiment>.csv files into this directory")
	)
	flag.Parse()
	cfg := experiments.Config{
		Paper:          *paper,
		GraphsPerPoint: *graphs,
		Schedules:      *schedules,
		GAGenerations:  *gaGens,
		MILPTimeLimit:  *milpBudg,
		Seed:           *seed,
		Workers:        *workers,
	}

	names := strings.Split(*exp, ",")
	if *exp == "all" {
		names = []string{"fig3", "fig4", "fig5", "fig6", "fig7", "table1"}
	}
	emit := func(t *experiments.Table) {
		t.Print(os.Stdout)
		if *csvDir != "" {
			path := filepath.Join(*csvDir, t.ID+".csv")
			f, err := os.Create(path)
			if err != nil {
				log.Fatal(err)
			}
			err = t.WriteCSV(f)
			if cerr := f.Close(); err == nil {
				err = cerr
			}
			if err != nil {
				log.Fatal(err)
			}
		}
	}
	for _, name := range names {
		start := time.Now()
		switch strings.TrimSpace(name) {
		case "fig3":
			emit(experiments.Fig3(cfg))
		case "fig4":
			emit(experiments.Fig4(cfg))
		case "fig5":
			emit(experiments.Fig5(cfg))
		case "fig6":
			emit(experiments.Fig6(cfg))
		case "fig7":
			emit(experiments.Fig7(cfg))
		case "table1":
			rows := experiments.Table1(cfg)
			experiments.PrintTable1(os.Stdout, rows)
			if *csvDir != "" {
				f, err := os.Create(filepath.Join(*csvDir, "table1.csv"))
				if err != nil {
					log.Fatal(err)
				}
				err = experiments.WriteCSVTable1(f, rows)
				if cerr := f.Close(); err == nil {
					err = cerr
				}
				if err != nil {
					log.Fatal(err)
				}
			}
		case "ablation":
			emit(experiments.CutPolicyAblation(cfg))
			fmt.Println()
			emit(experiments.GammaAblation(cfg))
			fmt.Println()
			emit(experiments.ScheduleCountAblation(cfg))
		case "localsearch":
			emit(experiments.LocalSearchComparison(cfg))
		case "portfolio":
			emit(experiments.PortfolioComparison(cfg))
		case "pareto":
			rows := experiments.ParetoComparisonEps(cfg, *eps)
			experiments.PrintPareto(os.Stdout, rows)
			if *csvDir != "" {
				f, err := os.Create(filepath.Join(*csvDir, "pareto.csv"))
				if err != nil {
					log.Fatal(err)
				}
				err = experiments.WriteCSVPareto(f, rows)
				if cerr := f.Close(); err == nil {
					err = cerr
				}
				if err != nil {
					log.Fatal(err)
				}
			}
		default:
			log.Fatalf("unknown experiment %q", name)
		}
		fmt.Printf("\n[%s completed in %s]\n\n", name, time.Since(start).Round(time.Millisecond))
	}
}
