package main

import (
	"bytes"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestBenchFlagValidation drives run's flag-parsing path: unknown -exp
// names, negative numeric overrides and an unwritable -csv directory
// must fail as usage errors (exit status 2 in main) before any
// experiment runs, instead of producing partial or garbage output.
func TestBenchFlagValidation(t *testing.T) {
	unwritable := filepath.Join(t.TempDir(), "not-a-dir")
	if err := os.WriteFile(unwritable, []byte("file, not dir"), 0o644); err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name string
		args []string
		want string // substring of the error
	}{
		{"unknown exp", []string{"-exp", "fig99"}, `unknown experiment "fig99"`},
		{"unknown exp in list", []string{"-exp", "fig3,warp"}, `unknown experiment "warp"`},
		{"negative graphs", []string{"-graphs", "-1"}, "-graphs must be >= 0"},
		{"negative schedules", []string{"-schedules", "-5"}, "-schedules must be >= 0"},
		{"negative generations", []string{"-generations", "-2"}, "-generations must be >= 0"},
		{"negative milp budget", []string{"-milp-budget", "-3s"}, "-milp-budget must be >= 0"},
		{"negative eps", []string{"-eps", "-0.1"}, "-eps must be >= 0"},
		{"negative workers", []string{"-workers", "-4"}, "-workers must be >= 0"},
		{"missing csv dir", []string{"-exp", "fig3", "-csv", filepath.Join(unwritable, "nope")}, "-csv directory not writable"},
		{"csv dir is a file", []string{"-exp", "fig3", "-csv", unwritable}, "-csv directory not writable"},
		{"uncreatable cpuprofile", []string{"-exp", "fig3", "-cpuprofile", filepath.Join(unwritable, "cpu.pprof")}, "-cpuprofile"},
		{"uncreatable memprofile", []string{"-exp", "fig3", "-memprofile", filepath.Join(unwritable, "mem.pprof")}, "-memprofile"},
		{"store without fleet", []string{"-exp", "fig3", "-store", "/tmp/x"}, "-store applies to -exp fleet only"},
		{"json without service fleet or certify", []string{"-exp", "fig3", "-json", "out.json"}, "-json applies to -exp service, fleet and certify only"},
		{"addr without service", []string{"-exp", "fleet", "-addr", "http://x"}, "-addr applies to -exp service only"},
		{"undeclared flag", []string{"-frobnicate"}, ""}, // FlagSet's own error
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var stderr bytes.Buffer
			err := run(tc.args, io.Discard, &stderr)
			if err == nil {
				t.Fatalf("args %q accepted; want a usage error", tc.args)
			}
			if !isUsageError(err) {
				t.Fatalf("args %q: error %v is not a usage error (would not exit 2)", tc.args, err)
			}
			if tc.want != "" {
				if !strings.Contains(err.Error(), tc.want) {
					t.Fatalf("args %q: error %q does not contain %q", tc.args, err, tc.want)
				}
				if out := stderr.String(); !strings.Contains(out, "Usage") && !strings.Contains(out, "-exp") {
					t.Fatalf("args %q: no usage message on stderr:\n%s", tc.args, out)
				}
			}
		})
	}
}

// TestBenchOnlineExperiment smoke-runs the online warm-vs-cold
// comparison end to end on a tiny profile, including the CSV export.
func TestBenchOnlineExperiment(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment sweep in -short mode")
	}
	dir := t.TempDir()
	var stdout bytes.Buffer
	err := run([]string{"-exp", "online", "-graphs", "1", "-schedules", "2", "-csv", dir}, &stdout, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	out := stdout.String()
	for _, want := range []string{"WarmRepair", "ColdRemap", "online completed"} {
		if !strings.Contains(out, want) {
			t.Fatalf("online report missing %q:\n%s", want, out)
		}
	}
	csv, err := os.ReadFile(filepath.Join(dir, "online.csv"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(csv), "WarmRepair") {
		t.Fatalf("online.csv missing the warm series:\n%s", csv)
	}
	// No stray probe files may survive the writability check.
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if strings.HasPrefix(e.Name(), ".spmap-bench-probe-") {
			t.Fatalf("writability probe %s left behind", e.Name())
		}
	}
}

// TestBenchIncrementalExperiment smoke-runs the move-throughput
// comparison end to end on a tiny profile with CSV export and both
// profilers enabled. The experiment itself panics if the three
// evaluation strategies ever disagree, so a clean run doubles as a
// differential check.
func TestBenchIncrementalExperiment(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment sweep in -short mode")
	}
	dir := t.TempDir()
	cpu := filepath.Join(dir, "cpu.pprof")
	mem := filepath.Join(dir, "mem.pprof")
	var stdout bytes.Buffer
	err := run([]string{"-exp", "incremental", "-schedules", "2",
		"-cpuprofile", cpu, "-memprofile", mem, "-csv", dir}, &stdout, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	out := stdout.String()
	for _, want := range []string{"full", "resume", "incremental", "moves/sec", "incremental completed"} {
		if !strings.Contains(out, want) {
			t.Fatalf("incremental report missing %q:\n%s", want, out)
		}
	}
	csv, err := os.ReadFile(filepath.Join(dir, "incremental.csv"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(csv), "speedup_vs_full") {
		t.Fatalf("incremental.csv missing header:\n%s", csv)
	}
	for _, p := range []string{cpu, mem} {
		// StopCPUProfile runs in a defer inside run, so both files are
		// complete by the time run returns.
		fi, err := os.Stat(p)
		if err != nil {
			t.Fatal(err)
		}
		if fi.Size() == 0 {
			t.Fatalf("profile %s is empty", p)
		}
	}
}

// TestBenchFleetExperiment smoke-runs the sharded fleet experiment end
// to end on a tiny profile with CSV, JSON and a persistent checkpoint
// store. The experiment fails loudly if sharding changes any trace or a
// resumed stream diverges from the uninterrupted reference, so a clean
// run doubles as a crash-resume differential check.
func TestBenchFleetExperiment(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment sweep in -short mode")
	}
	dir := t.TempDir()
	store := filepath.Join(dir, "checkpoints")
	jsonPath := filepath.Join(dir, "fleet.json")
	var stdout bytes.Buffer
	err := run([]string{"-exp", "fleet", "-graphs", "4", "-schedules", "2",
		"-csv", dir, "-json", jsonPath, "-store", store}, &stdout, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	out := stdout.String()
	for _, want := range []string{"shard-sweep", "cadence-sweep", "4/4 resumed traces identical", "fleet completed"} {
		if !strings.Contains(out, want) {
			t.Fatalf("fleet report missing %q:\n%s", want, out)
		}
	}
	csv, err := os.ReadFile(filepath.Join(dir, "fleet.csv"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(csv), "trace_matches") {
		t.Fatalf("fleet.csv missing header:\n%s", csv)
	}
	js, err := os.ReadFile(jsonPath)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(js), `"resume-verify"`) {
		t.Fatalf("fleet.json missing resume section:\n%s", js)
	}
	// The persistent store must hold the completed checkpoints.
	entries, err := os.ReadDir(store)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) == 0 {
		t.Fatal("persistent checkpoint store is empty after the run")
	}
}

// TestBenchRobustExperiment smoke-runs the uncertainty-aware robust
// comparison end to end on a tiny profile, including both CSV exports
// (the quality comparison and the Monte-Carlo cost sweep).
func TestBenchRobustExperiment(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment sweep in -short mode")
	}
	dir := t.TempDir()
	var stdout bytes.Buffer
	err := run([]string{"-exp", "robust", "-graphs", "1", "-schedules", "2", "-csv", dir}, &stdout, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	out := stdout.String()
	for _, want := range []string{"nom_tail", "rob_tail", "tail_impr", "Monte-Carlo batching cost", "overhead", "robust completed"} {
		if !strings.Contains(out, want) {
			t.Fatalf("robust report missing %q:\n%s", want, out)
		}
	}
	csvQ, err := os.ReadFile(filepath.Join(dir, "robust.csv"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(csvQ), "tail_improvement") {
		t.Fatalf("robust.csv missing header:\n%s", csvQ)
	}
	csvC, err := os.ReadFile(filepath.Join(dir, "robust_cost.csv"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(csvC), "overhead") {
		t.Fatalf("robust_cost.csv missing header:\n%s", csvC)
	}
}

// TestBenchCertifyExperiment smoke-runs the certificate experiment on a
// tiny profile: both sections print, the CSV exports, and the JSON
// rows (the BENCH_PR10.json shape) parse and carry certificates.
func TestBenchCertifyExperiment(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment sweep in -short mode")
	}
	dir := t.TempDir()
	jsonPath := filepath.Join(dir, "certify.json")
	var stdout bytes.Buffer
	err := run([]string{"-exp", "certify", "-graphs", "1", "-schedules", "2",
		"-csv", dir, "-json", jsonPath}, &stdout, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	out := stdout.String()
	for _, want := range []string{"sp-sweep", "gap-stop", "blast-s1", "bound_name", "certify completed"} {
		if !strings.Contains(out, want) {
			t.Fatalf("certify report missing %q:\n%s", want, out)
		}
	}
	csvB, err := os.ReadFile(filepath.Join(dir, "certify.csv"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(csvB), "lower_bound") || !strings.Contains(string(csvB), "budget_saved") {
		t.Fatalf("certify.csv missing header columns:\n%s", csvB)
	}
	js, err := os.ReadFile(jsonPath)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(js, []byte(`"lower_bound"`)) || !bytes.Contains(js, []byte(`"gap"`)) {
		t.Fatalf("certify.json missing certificate fields:\n%s", js)
	}
}

// TestBenchValidatesBeforeRunning pins that a bad flag combined with a
// valid experiment never starts the sweep (no experiment output before
// the usage error).
func TestBenchValidatesBeforeRunning(t *testing.T) {
	var stdout bytes.Buffer
	err := run([]string{"-exp", "fig3,bogus", "-graphs", "1"}, &stdout, io.Discard)
	if err == nil || !isUsageError(err) {
		t.Fatalf("got %v, want a usage error", err)
	}
	if stdout.Len() != 0 {
		t.Fatalf("experiment output emitted before validation failed:\n%s", stdout.String())
	}
}
