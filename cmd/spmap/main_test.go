package main

import (
	"bytes"
	"encoding/json"
	"io"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"spmap/internal/gen"
	"spmap/internal/wf"
)

// writeTestGraph writes a small random series-parallel graph as JSON and
// returns its path.
func writeTestGraph(t *testing.T) string {
	t.Helper()
	g := gen.SeriesParallel(rand.New(rand.NewSource(1)), 12, gen.DefaultAttr())
	path := filepath.Join(t.TempDir(), "graph.json")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := g.WriteTo(f); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	return path
}

// TestFlagValidation drives run's flag-parsing path: unknown -algo /
// -objective values and nonsensical numeric flags must fail as usage
// errors (exit status 2 in main) instead of silently falling back to
// defaults.
func TestFlagValidation(t *testing.T) {
	cases := []struct {
		name string
		args []string
		want string // substring of the error
	}{
		{"missing graph", []string{}, "-graph is required"},
		{"unknown algo", []string{"-graph", "g.json", "-algo", "quantum"}, `unknown algorithm "quantum"`},
		{"unknown objective", []string{"-graph", "g.json", "-objective", "latency"}, `unknown objective "latency"`},
		{"negative eps", []string{"-graph", "g.json", "-eps", "-0.5"}, "-eps must be >= 0"},
		{"zero ls-budget", []string{"-graph", "g.json", "-ls-budget", "0"}, "-ls-budget must be > 0"},
		{"negative ls-budget", []string{"-graph", "g.json", "-ls-budget", "-100"}, "-ls-budget must be > 0"},
		{"zero workers", []string{"-graph", "g.json", "-workers", "0"}, "-workers must be > 0"},
		{"negative workers", []string{"-graph", "g.json", "-workers", "-2"}, "-workers must be > 0"},
		{"negative schedules", []string{"-graph", "g.json", "-schedules", "-1"}, "-schedules must be >= 0"},
		{"gamma below one", []string{"-graph", "g.json", "-algo", "gamma", "-gamma", "0.5"}, "-gamma must be >= 1"},
		{"zero generations", []string{"-graph", "g.json", "-algo", "nsga2", "-generations", "0"}, "-generations must be > 0"},
		{"sweep without pareto", []string{"-graph", "g.json", "-algo", "sweep"}, "pareto driver"},
		{"energy with heft", []string{"-graph", "g.json", "-algo", "heft", "-objective", "energy"}, "-objective energy requires"},
		{"zero samples", []string{"-graph", "g.json", "-objective", "robust", "-samples", "0"}, "-samples must be > 0"},
		{"negative samples", []string{"-graph", "g.json", "-objective", "robust", "-samples", "-4"}, "-samples must be > 0"},
		{"tail zero", []string{"-graph", "g.json", "-objective", "robust", "-tail", "0"}, "-tail must be in (0, 1)"},
		{"tail one", []string{"-graph", "g.json", "-objective", "robust", "-tail", "1"}, "-tail must be in (0, 1)"},
		{"tail above one", []string{"-graph", "g.json", "-objective", "robust", "-tail", "1.5"}, "-tail must be in (0, 1)"},
		{"tail negative", []string{"-graph", "g.json", "-objective", "robust", "-tail", "-0.1"}, "-tail must be in (0, 1)"},
		{"robust with heft", []string{"-graph", "g.json", "-objective", "robust", "-algo", "heft"}, "-objective robust supports -algo nsga2"},
		{"robust with portfolio", []string{"-graph", "g.json", "-objective", "robust", "-algo", "portfolio"}, "-objective robust supports -algo nsga2"},
		{"robust with explicit spfirstfit", []string{"-graph", "g.json", "-objective", "robust", "-algo", "spfirstfit"}, "-objective robust supports -algo nsga2"},
		{"samples without robust", []string{"-graph", "g.json", "-samples", "16"}, "configures the robust objective"},
		{"tail without robust", []string{"-graph", "g.json", "-objective", "pareto", "-tail", "0.9"}, "configures the robust objective"},
		{"noise sigma without robust", []string{"-graph", "g.json", "-noise-device", "0.8"}, "configures the robust objective"},
		{"bad noise kind", []string{"-graph", "g.json", "-objective", "robust", "-noise-kind", "gamma"}, "unknown -noise-kind"},
		{"negative noise sigma", []string{"-graph", "g.json", "-objective", "robust", "-noise-device", "-0.5"}, "invalid noise model"},
		{"uniform sigma one", []string{"-graph", "g.json", "-objective", "robust", "-noise-kind", "uniform", "-noise-transfer", "1.5"}, "invalid noise model"},
		{"gap target negative", []string{"-graph", "g.json", "-algo", "portfolio", "-gap-target", "-0.1"}, "-gap-target must be in [0, 1)"},
		{"gap target one", []string{"-graph", "g.json", "-algo", "portfolio", "-gap-target", "1"}, "-gap-target must be in [0, 1)"},
		{"gap target above one", []string{"-graph", "g.json", "-algo", "portfolio", "-gap-target", "1.5"}, "-gap-target must be in [0, 1)"},
		{"gap target NaN", []string{"-graph", "g.json", "-algo", "portfolio", "-gap-target", "NaN"}, "-gap-target must be in [0, 1)"},
		{"gap target with heft", []string{"-graph", "g.json", "-algo", "heft", "-gap-target", "0.05"}, "-gap-target applies to -algo portfolio only"},
		{"gap target with anneal", []string{"-graph", "g.json", "-algo", "anneal", "-gap-target", "0.05"}, "-gap-target applies to -algo portfolio only"},
		{"gap target default algo", []string{"-graph", "g.json", "-gap-target", "0.05"}, "-gap-target applies to -algo portfolio only"},
		{"explicit zero gap target with heft", []string{"-graph", "g.json", "-algo", "heft", "-gap-target", "0"}, "-gap-target applies to -algo portfolio only"},
		{"undeclared flag", []string{"-graph", "g.json", "-frobnicate"}, ""}, // FlagSet's own error
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var stderr bytes.Buffer
			err := run(tc.args, io.Discard, &stderr)
			if err == nil {
				t.Fatalf("args %q accepted; want a usage error", tc.args)
			}
			if tc.want != "" && !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("args %q: error %q does not contain %q", tc.args, err, tc.want)
			}
			if tc.want != "" {
				if !isUsageError(err) {
					t.Fatalf("args %q: error %v is not a usage error (would not exit 2)", tc.args, err)
				}
				if out := stderr.String(); !strings.Contains(out, "Usage") && !strings.Contains(out, "-graph") {
					t.Fatalf("args %q: no usage message on stderr:\n%s", tc.args, out)
				}
			}
		})
	}
}

// TestRunAlgorithms smoke-runs the CLI body end to end for a
// representative algorithm set, including the portfolio.
func TestRunAlgorithms(t *testing.T) {
	graphPath := writeTestGraph(t)
	for _, algo := range []string{"spfirstfit", "heft", "anneal", "portfolio"} {
		t.Run(algo, func(t *testing.T) {
			var stdout bytes.Buffer
			args := []string{"-graph", graphPath, "-algo", algo, "-schedules", "5",
				"-ls-budget", "600", "-workers", "2", "-json"}
			if err := run(args, &stdout, io.Discard); err != nil {
				t.Fatal(err)
			}
			var out map[string]any
			if err := json.Unmarshal(stdout.Bytes(), &out); err != nil {
				t.Fatalf("non-JSON output: %v\n%s", err, stdout.String())
			}
			if out["algorithm"] != algo {
				t.Fatalf("algorithm = %v, want %s", out["algorithm"], algo)
			}
			if _, ok := out["makespan"].(float64); !ok {
				t.Fatalf("no makespan in output: %v", out)
			}
			if algo == "portfolio" {
				if _, ok := out["portfolio_stats"]; !ok {
					t.Fatalf("portfolio run missing portfolio_stats: %v", out)
				}
			}
		})
	}
}

// TestRunPortfolioText checks the human-readable portfolio report.
func TestRunPortfolioText(t *testing.T) {
	graphPath := writeTestGraph(t)
	var stdout bytes.Buffer
	err := run([]string{"-graph", graphPath, "-algo", "portfolio", "-schedules", "5",
		"-ls-budget", "600", "-workers", "2"}, &stdout, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	out := stdout.String()
	for _, want := range []string{"portfolio:", "SPFF+Refine", "NSGA2", "mapping:"} {
		if !strings.Contains(out, want) {
			t.Fatalf("portfolio report missing %q:\n%s", want, out)
		}
	}
	// -refine on the portfolio is redundant and must be skipped, not run.
	var stdout2 bytes.Buffer
	err = run([]string{"-graph", graphPath, "-algo", "portfolio", "-refine", "-schedules", "5",
		"-ls-budget", "600"}, &stdout2, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
}

// TestRunDeterministicAcrossWorkers pins the CLI-level determinism
// contract: identical output (modulo the elapsed timing) for any
// -workers value.
func TestRunDeterministicAcrossWorkers(t *testing.T) {
	graphPath := writeTestGraph(t)
	outputs := make([]string, 0, 2)
	for _, workers := range []string{"1", "4"} {
		var stdout bytes.Buffer
		err := run([]string{"-graph", graphPath, "-algo", "portfolio", "-schedules", "5",
			"-ls-budget", "600", "-workers", workers, "-json"}, &stdout, io.Discard)
		if err != nil {
			t.Fatal(err)
		}
		var out map[string]any
		if err := json.Unmarshal(stdout.Bytes(), &out); err != nil {
			t.Fatal(err)
		}
		delete(out, "elapsed_ms")
		// Cache telemetry is wall-clock dependent by design.
		if ps, ok := out["portfolio_stats"].(map[string]any); ok {
			delete(ps, "Cache")
		}
		b, err := json.Marshal(out)
		if err != nil {
			t.Fatal(err)
		}
		outputs = append(outputs, string(b))
	}
	if outputs[0] != outputs[1] {
		t.Fatalf("-workers changed the output:\n%s\nvs\n%s", outputs[0], outputs[1])
	}
}

// TestPortfolioEnergyObjectiveRejected pins that the portfolio cannot
// be asked for an objective it does not optimize, even with -refine.
func TestPortfolioEnergyObjectiveRejected(t *testing.T) {
	for _, args := range [][]string{
		{"-graph", "g.json", "-algo", "portfolio", "-objective", "energy"},
		{"-graph", "g.json", "-algo", "portfolio", "-objective", "energy", "-refine"},
	} {
		err := run(args, io.Discard, io.Discard)
		if err == nil || !isUsageError(err) {
			t.Fatalf("args %q: got %v, want a usage error", args, err)
		}
	}
}

// TestUndeclaredFlagIsUsageError pins the exit-2 classification of
// flag-parse failures.
func TestUndeclaredFlagIsUsageError(t *testing.T) {
	var stderr bytes.Buffer
	err := run([]string{"-graph", "g.json", "-frobnicate"}, io.Discard, &stderr)
	if err == nil || !isUsageError(err) {
		t.Fatalf("undeclared flag: got %v, want a usage error (exit 2)", err)
	}
}

// TestEveryKnownAlgoDispatches guards the knownAlgos/dispatch pairing:
// every validated name (except the pareto-only "sweep" driver) must run
// end to end rather than fall into the internal-error default.
func TestEveryKnownAlgoDispatches(t *testing.T) {
	graphPath := writeTestGraph(t)
	for algo := range knownAlgos {
		if algo == "sweep" {
			continue // pareto-only driver, rejected for -objective time
		}
		t.Run(algo, func(t *testing.T) {
			args := []string{"-graph", graphPath, "-algo", algo, "-schedules", "2",
				"-ls-budget", "300", "-generations", "3", "-milp-budget", "100ms", "-json"}
			if err := run(args, io.Discard, io.Discard); err != nil {
				t.Fatalf("-algo %s: %v", algo, err)
			}
		})
	}
}

// TestRunRobust drives -objective robust end to end: the JSON report
// must carry a three-objective front with finite robust values, export
// the front as CSV, and be identical for any -workers value.
func TestRunRobust(t *testing.T) {
	graphPath := writeTestGraph(t)
	frontPath := filepath.Join(t.TempDir(), "front.csv")
	outputs := make([]string, 0, 2)
	for _, workers := range []string{"1", "4"} {
		var stdout bytes.Buffer
		err := run([]string{"-graph", graphPath, "-objective", "robust", "-algo", "nsga2",
			"-schedules", "4", "-samples", "6", "-tail", "0.9", "-noise-device", "0.4",
			"-ls-budget", "300", "-workers", workers, "-seed", "3",
			"-front", frontPath, "-json"}, &stdout, io.Discard)
		if err != nil {
			t.Fatal(err)
		}
		var out map[string]any
		if err := json.Unmarshal(stdout.Bytes(), &out); err != nil {
			t.Fatalf("non-JSON output: %v\n%s", err, stdout.String())
		}
		if out["objective"] != "robust" {
			t.Fatalf("objective = %v", out["objective"])
		}
		front, ok := out["front"].([]any)
		if !ok || len(front) == 0 {
			t.Fatalf("no front in output: %v", out)
		}
		for _, pt := range front {
			m := pt.(map[string]any)
			for _, k := range []string{"makespan", "energy", "robust"} {
				if v, ok := m[k].(float64); !ok || v <= 0 {
					t.Fatalf("front point %v: bad %s", m, k)
				}
			}
		}
		delete(out, "elapsed_ms")
		b, err := json.Marshal(out)
		if err != nil {
			t.Fatal(err)
		}
		outputs = append(outputs, string(b))
	}
	if outputs[0] != outputs[1] {
		t.Fatalf("-workers changed the robust output:\n%s\nvs\n%s", outputs[0], outputs[1])
	}
	csv, err := os.ReadFile(frontPath)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(string(csv), "point,makespan,energy,robust") {
		t.Fatalf("front CSV header: %q", strings.SplitN(string(csv), "\n", 2)[0])
	}
}

// TestRunRobustText checks the human-readable robust report.
func TestRunRobustText(t *testing.T) {
	graphPath := writeTestGraph(t)
	var stdout bytes.Buffer
	err := run([]string{"-graph", graphPath, "-objective", "robust",
		"-schedules", "4", "-samples", "5", "-ls-budget", "300", "-workers", "2"},
		&stdout, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	out := stdout.String()
	for _, want := range []string{"algorithm:   nsga2 (robust)", "noise:", "robust_ms", "hedged:"} {
		if !strings.Contains(out, want) {
			t.Fatalf("robust report missing %q:\n%s", want, out)
		}
	}
}

// TestParetoDriverValidatedUpfront pins that a non-pareto algorithm
// under -objective pareto is a usage error (exit 2), symmetric with
// the -algo sweep -objective time case.
func TestParetoDriverValidatedUpfront(t *testing.T) {
	err := run([]string{"-graph", "g.json", "-objective", "pareto", "-algo", "heft"},
		io.Discard, io.Discard)
	if err == nil || !isUsageError(err) {
		t.Fatalf("got %v, want a usage error", err)
	}
}

// writeTestScenario writes a small mixed scenario as JSON and returns
// its path.
func writeTestScenario(t *testing.T) string {
	t.Helper()
	sc := gen.Scenario{Events: []gen.Event{
		{Time: 1, Kind: gen.DeviceDegrade, Device: 1, SpeedScale: 0.5, BandwidthScale: 1},
		{Time: 2, Kind: gen.TaskArrive, Tasks: 4, Seed: 7},
		{Time: 3, Kind: gen.DeviceFail, Device: 2},
	}}
	path := filepath.Join(t.TempDir(), "scenario.json")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := sc.Write(f); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	return path
}

// TestRunScenarioReplay drives the -scenario replay mode end to end:
// text report, JSON report, and the repair-mode vocabulary.
func TestRunScenarioReplay(t *testing.T) {
	graphPath := writeTestGraph(t)
	scenarioPath := writeTestScenario(t)

	var stdout bytes.Buffer
	err := run([]string{"-graph", graphPath, "-scenario", scenarioPath,
		"-schedules", "3", "-ls-budget", "300", "-workers", "2"}, &stdout, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	out := stdout.String()
	for _, want := range []string{"scenario:", "device-degrade", "task-arrive", "device-fail", "final:"} {
		if !strings.Contains(out, want) {
			t.Fatalf("scenario report missing %q:\n%s", want, out)
		}
	}

	for _, mode := range []string{"refine", "portfolio", "cold"} {
		var jsonOut bytes.Buffer
		err := run([]string{"-graph", graphPath, "-scenario", scenarioPath, "-repair", mode,
			"-schedules", "3", "-ls-budget", "300", "-json"}, &jsonOut, io.Discard)
		if err != nil {
			t.Fatalf("-repair %s: %v", mode, err)
		}
		var rep map[string]any
		if err := json.Unmarshal(jsonOut.Bytes(), &rep); err != nil {
			t.Fatalf("-repair %s: non-JSON output: %v\n%s", mode, err, jsonOut.String())
		}
		if rep["repair"] != mode {
			t.Fatalf("repair = %v, want %s", rep["repair"], mode)
		}
		if evs, ok := rep["events"].([]any); !ok || len(evs) != 3 {
			t.Fatalf("-repair %s: replayed %v events, want 3", mode, rep["events"])
		}
	}
}

// TestRunScenarioValidation pins the replay mode's usage errors.
func TestRunScenarioValidation(t *testing.T) {
	for _, tc := range []struct {
		args []string
		want string
	}{
		{[]string{"-graph", "g.json", "-scenario", "s.json", "-repair", "prayer"}, "unknown repair mode"},
		{[]string{"-graph", "g.json", "-scenario", "s.json", "-objective", "energy"}, "makespan only"},
		{[]string{"-graph", "g.json", "-scenario", "s.json", "-repair", "cold", "-ls-budget", "0"}, "-ls-budget"},
		// Flags replay mode would otherwise silently ignore are rejected.
		{[]string{"-graph", "g.json", "-scenario", "s.json", "-dot", "out.dot"}, "does not support"},
		{[]string{"-graph", "g.json", "-scenario", "s.json", "-gantt"}, "does not support"},
		{[]string{"-graph", "g.json", "-scenario", "s.json", "-refine"}, "does not support"},
		{[]string{"-graph", "g.json", "-scenario", "s.json", "-algo", "portfolio"}, "does not support"},
		{[]string{"-graph", "g.json", "-scenario", "s.json", "-schedules", "0"}, "no BFS-only mode"},
		{[]string{"-graph", "g.json", "-repair", "portfolio"}, "pass -scenario"},
	} {
		err := run(tc.args, io.Discard, io.Discard)
		if err == nil || !isUsageError(err) || !strings.Contains(err.Error(), tc.want) {
			t.Fatalf("args %q: got %v, want usage error containing %q", tc.args, err, tc.want)
		}
	}
	// A missing scenario file is an I/O error, not a usage error.
	graphPath := writeTestGraph(t)
	err := run([]string{"-graph", graphPath, "-scenario", "does-not-exist.json"}, io.Discard, io.Discard)
	if err == nil || isUsageError(err) {
		t.Fatalf("missing scenario file: got %v, want a plain error", err)
	}
}

// TestRunScenarioDeterministicAcrossWorkers extends the CLI determinism
// contract to replay mode: identical JSON (modulo timing) for any
// -workers value.
func TestRunScenarioDeterministicAcrossWorkers(t *testing.T) {
	graphPath := writeTestGraph(t)
	scenarioPath := writeTestScenario(t)
	outputs := make([]string, 0, 2)
	for _, workers := range []string{"1", "4"} {
		var stdout bytes.Buffer
		err := run([]string{"-graph", graphPath, "-scenario", scenarioPath,
			"-schedules", "3", "-ls-budget", "300", "-workers", workers, "-json"}, &stdout, io.Discard)
		if err != nil {
			t.Fatal(err)
		}
		var out map[string]any
		if err := json.Unmarshal(stdout.Bytes(), &out); err != nil {
			t.Fatal(err)
		}
		delete(out, "elapsed_ms")
		b, err := json.Marshal(out)
		if err != nil {
			t.Fatal(err)
		}
		outputs = append(outputs, string(b))
	}
	if outputs[0] != outputs[1] {
		t.Fatalf("-workers changed the replay output:\n%s\nvs\n%s", outputs[0], outputs[1])
	}
}

// TestRunGapTarget smoke-runs the certified-gap early stop end to end:
// the blast workflow is chain-dominated, so its transfer-aware path
// bound is near-exact and a 5% target stops the portfolio well before
// the default 50100-evaluation budget. Both output modes must surface
// the certificate and the stop.
func TestRunGapTarget(t *testing.T) {
	g := wf.Generate(wf.Blast, 1, rand.New(rand.NewSource(7)))
	graphPath := filepath.Join(t.TempDir(), "blast.json")
	f, err := os.Create(graphPath)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := g.WriteTo(f); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	var stdout bytes.Buffer
	args := []string{"-graph", graphPath, "-algo", "portfolio", "-gap-target", "0.05",
		"-schedules", "20", "-seed", "7", "-workers", "2", "-json"}
	if err := run(args, &stdout, io.Discard); err != nil {
		t.Fatal(err)
	}
	var out struct {
		Gap            float64 `json:"gap"`
		LowerBound     float64 `json:"lower_bound"`
		Makespan       float64 `json:"makespan"`
		PortfolioStats struct {
			GapStop     bool
			BudgetSaved int
			Evaluations int
		} `json:"portfolio_stats"`
	}
	if err := json.Unmarshal(stdout.Bytes(), &out); err != nil {
		t.Fatalf("non-JSON output: %v\n%s", err, stdout.String())
	}
	if !out.PortfolioStats.GapStop {
		t.Fatalf("gap target did not stop the race:\n%s", stdout.String())
	}
	if out.Gap > 0.05 || out.LowerBound <= 0 || out.LowerBound > out.Makespan {
		t.Fatalf("bad certificate: gap=%v bound=%v makespan=%v", out.Gap, out.LowerBound, out.Makespan)
	}
	if out.PortfolioStats.BudgetSaved < 50100/5 {
		t.Fatalf("early stop saved only %d of 50100 evaluations", out.PortfolioStats.BudgetSaved)
	}

	var text bytes.Buffer
	args = []string{"-graph", graphPath, "-algo", "portfolio", "-gap-target", "0.05",
		"-schedules", "20", "-seed", "7"}
	if err := run(args, &text, io.Discard); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"certified:", "lower bound", "early stop at gap target 0.05"} {
		if !strings.Contains(text.String(), want) {
			t.Fatalf("text report missing %q:\n%s", want, text.String())
		}
	}
}
