// Command spmap maps a task graph (JSON) onto a heterogeneous platform
// and prints the resulting assignment, makespan and improvement.
//
// Usage:
//
//	spmap -graph app.json [-platform platform.json] [-algo spfirstfit]
//	      [-schedules 100] [-gamma 2] [-refine] [-json]
//	      [-objective time|energy|pareto] [-eps 0.01] [-front front.csv]
//
// Algorithms: singlenode, seriesparallel, snfirstfit, spfirstfit, gamma,
// heft, peft, nsga2, anneal, hillclimb, portfolio, milp-device,
// milp-time, milp-zhouliu. The -refine flag polishes any algorithm's
// mapping with local-search refinement (never worse, deterministic under
// -seed for any -workers value). "portfolio" races the whole mapper
// portfolio (SPFF+Refine, HEFT/PEFT+Refine, anneal, hillclimb, NSGA-II)
// concurrently under the shared -ls-budget with a memoizing evaluation
// cache and cross-pollination of the incumbent best mapping; it reports
// a certified makespan lower bound and optimality gap, and -gap-target
// (in [0, 1)) stops the race early once the certified gap reaches the
// target instead of burning the remaining budget.
//
// The -objective flag selects the optimization target: "time" (the
// default single-objective makespan), "energy" (pure compute energy;
// requires the local-search algorithms or -refine), "pareto" (the
// full makespan x energy trade-off: -algo nsga2 selects the
// two-objective NSGA-II driver, anything else the weighted local-search
// sweep; the front is printed, exported as CSV via -front, and bounded
// by the ε-dominance resolution -eps), or "robust" (the three-objective
// makespan x energy x tail-makespan trade-off under the stochastic cost
// model: every candidate is additionally evaluated under -samples
// Monte-Carlo perturbed cost worlds drawn from the -noise-* multiplier
// spreads, and the -tail quantile of its perturbed makespans becomes
// the third, uncertainty-hedging objective; NSGA-II only).
//
// The -scenario flag switches to online replay mode: the graph becomes
// a live instance perturbed by the scenario's event stream (device
// failures/degradations, subgraph arrivals/departures; generate streams
// with spmap-gen -kind scenario), with the incumbent mapping migrated
// and warm-start-repaired after each event under the -ls-budget
// per-event budget. -repair selects the repair pass: refine (default),
// portfolio, or cold (re-map from scratch — the comparison baseline).
//
// Unknown -algo/-objective/-repair values and nonsensical numeric flags
// (negative -eps, non-positive -ls-budget, -workers, -schedules out of
// range, -gamma < 1) exit with status 2 and a usage message instead of
// silently falling back to defaults.
package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"runtime"
	"time"

	"spmap"
	"spmap/internal/cli"
	"spmap/internal/experiments"
	"spmap/internal/mappers/decomp"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("spmap: ")
	cli.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// isUsageError classifies option-validation failures (exit status 2).
func isUsageError(err error) bool { return cli.IsUsage(err) }

// knownAlgos is the -algo vocabulary (for -objective time|energy).
var knownAlgos = map[string]bool{
	"singlenode": true, "seriesparallel": true, "snfirstfit": true,
	"spfirstfit": true, "gamma": true, "heft": true, "peft": true,
	"nsga2": true, "anneal": true, "hillclimb": true, "portfolio": true,
	"milp-device": true, "milp-time": true, "milp-zhouliu": true,
	"sweep": true, // pareto-only driver name, accepted for symmetry
}

// run is main's testable body: it parses and validates args, executes
// the mapping, and writes the report to stdout. Errors of type
// usageError (and flag parse errors, which the FlagSet reports to
// stderr itself) correspond to exit status 2.
func run(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("spmap", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		graphPath    = fs.String("graph", "", "task graph JSON file (required)")
		platformPath = fs.String("platform", "", "platform JSON file (default: paper reference platform)")
		algo         = fs.String("algo", "spfirstfit", "mapping algorithm")
		schedules    = fs.Int("schedules", 100, "random schedules in the cost function (>= 0)")
		gamma        = fs.Float64("gamma", 2, "gamma for -algo gamma (>= 1)")
		gaGens       = fs.Int("generations", 500, "NSGA-II generations (> 0)")
		milpBudget   = fs.Duration("milp-budget", 30*time.Second, "MILP time limit")
		lsBudget     = fs.Int("ls-budget", 50100, "local-search / -refine / portfolio evaluation budget; per-event repair budget in -scenario mode (> 0)")
		gapTarget    = fs.Float64("gap-target", 0, "stop -algo portfolio once the certified optimality gap reaches this target (in [0, 1); 0 = run the full budget)")
		refine       = fs.Bool("refine", false, "polish the mapping with local-search refinement")
		objective    = fs.String("objective", "time", "optimization objective: time, energy, pareto, or robust")
		epsFlag      = fs.Float64("eps", 0, "Pareto archive ε-grid resolution for -objective pareto|robust (>= 0; 0 = exact front)")
		frontOut     = fs.String("front", "", "write the Pareto front as CSV to this file (-objective pareto|robust)")
		samples      = fs.Int("samples", spmap.DefaultRobustSamples, "Monte-Carlo samples per candidate for -objective robust (> 0)")
		tailFlag     = fs.Float64("tail", 0.95, "reported tail quantile for -objective robust (in (0, 1))")
		noiseKind    = fs.String("noise-kind", "lognormal", "-objective robust noise distribution: lognormal or uniform")
		noiseExec    = fs.Float64("noise-exec", 0, "per-(task, device) execution-time noise spread (-objective robust)")
		noiseDevice  = fs.Float64("noise-device", 0.5, "common-mode per-device noise spread (-objective robust)")
		noiseXfer    = fs.Float64("noise-transfer", 0.5, "per-edge transfer-size noise spread (-objective robust)")
		workers      = fs.Int("workers", runtime.GOMAXPROCS(0), "evaluation-engine worker pool (> 0; results are identical for any value)")
		scenario     = fs.String("scenario", "", "replay this online scenario JSON against the graph (see spmap-gen -kind scenario)")
		repairMode   = fs.String("repair", "refine", "scenario repair mode: refine, portfolio, or cold (re-map from scratch)")
		seed         = fs.Int64("seed", 1, "RNG seed (schedules, GA, local search, portfolio, replay)")
		asJSON       = fs.Bool("json", false, "emit machine-readable JSON")
		dotOut       = fs.String("dot", "", "write the mapped task graph as Graphviz DOT to this file")
		gantt        = fs.Bool("gantt", false, "print a textual Gantt chart of the best schedule")
	)
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return err
		}
		// The FlagSet already reported the problem and the usage to
		// stderr; classify it for main's exit-2 path without reprinting.
		return cli.Usage(err)
	}
	usage := func(format string, a ...any) error {
		err := cli.Usage(fmt.Errorf(format, a...))
		fmt.Fprintf(stderr, "spmap: %v\n", err)
		fs.Usage()
		return err
	}
	// Flags the user passed explicitly, for rejecting combinations where
	// a default-valued flag is fine but a deliberate one is ignored.
	explicit := map[string]bool{}
	fs.Visit(func(f *flag.Flag) { explicit[f.Name] = true })
	robustOnly := ""
	for _, name := range []string{"samples", "tail", "noise-kind", "noise-exec", "noise-device", "noise-transfer"} {
		if explicit[name] && robustOnly == "" {
			robustOnly = name
		}
	}
	noise := spmap.NoiseModel{
		ExecSigma: *noiseExec, DeviceSigma: *noiseDevice, TransferSigma: *noiseXfer,
		Seed: *seed,
	}
	kindOK := true
	switch *noiseKind {
	case "lognormal":
		noise.Kind = spmap.NoiseLognormal
	case "uniform":
		noise.Kind = spmap.NoiseUniform
	default:
		kindOK = false
	}
	switch {
	case *graphPath == "":
		return usage("-graph is required")
	case !knownAlgos[*algo]:
		return usage("unknown algorithm %q", *algo)
	case *objective != "time" && *objective != "energy" && *objective != "pareto" && *objective != "robust":
		return usage("unknown objective %q (time, energy, pareto, robust)", *objective)
	case *objective != "robust" && robustOnly != "":
		return usage("-%s configures the robust objective; pass -objective robust", robustOnly)
	case *objective == "robust" && !kindOK:
		return usage("unknown -noise-kind %q (lognormal, uniform)", *noiseKind)
	case *objective == "robust" && *samples <= 0:
		return usage("-samples must be > 0, got %d", *samples)
	case *objective == "robust" && !(*tailFlag > 0 && *tailFlag < 1):
		return usage("-tail must be in (0, 1), got %g", *tailFlag)
	case *objective == "robust" && noise.Validate() != nil:
		return usage("invalid noise model: %v", noise.Validate())
	case *objective == "robust" && (*algo != "nsga2" && (*algo != "spfirstfit" || explicit["algo"])):
		return usage("-objective robust supports -algo nsga2 only, not %q", *algo)
	case *epsFlag < 0:
		return usage("-eps must be >= 0, got %g", *epsFlag)
	case *lsBudget <= 0:
		return usage("-ls-budget must be > 0, got %d", *lsBudget)
	case !(*gapTarget >= 0 && *gapTarget < 1):
		return usage("-gap-target must be in [0, 1), got %g", *gapTarget)
	case explicit["gap-target"] && (*algo != "portfolio" || *scenario != ""):
		return usage("-gap-target applies to -algo portfolio only (the other mappers consume no certified-gap stop)")
	case *workers <= 0:
		return usage("-workers must be > 0, got %d", *workers)
	case *schedules < 0:
		return usage("-schedules must be >= 0, got %d", *schedules)
	case *gamma < 1:
		return usage("-gamma must be >= 1, got %g", *gamma)
	case *gaGens <= 0:
		return usage("-generations must be > 0, got %d", *gaGens)
	case *algo == "sweep" && *objective != "pareto":
		return usage("-algo sweep is a pareto driver; pass -objective pareto")
	case *objective == "pareto" && *algo != "sweep" && *algo != "nsga2" && *algo != "spfirstfit":
		return usage("-objective pareto supports -algo sweep (default) or nsga2, not %q", *algo)
	case *objective == "energy" && (*algo == "portfolio" ||
		(*algo != "anneal" && *algo != "hillclimb" && !*refine)):
		return usage("-objective energy requires -algo anneal|hillclimb or -refine " +
			"(the other mappers, including the portfolio, optimize the makespan only)")
	case *repairMode != "refine" && *repairMode != "portfolio" && *repairMode != "cold":
		return usage("unknown repair mode %q (refine, portfolio, cold)", *repairMode)
	case *scenario != "" && *objective != "time":
		return usage("-scenario replay optimizes the makespan only; drop -objective %s", *objective)
	case *scenario != "" && (*dotOut != "" || *gantt || *frontOut != "" || *refine || explicit["algo"]):
		return usage("-scenario replay mode does not support -algo/-refine/-dot/-gantt/-front " +
			"(select the repair pass with -repair instead)")
	case *scenario != "" && explicit["schedules"] && *schedules == 0:
		return usage("-scenario replay has no BFS-only mode; -schedules must be > 0 (default 100)")
	case *scenario == "" && explicit["repair"]:
		return usage("-repair selects the -scenario replay repair pass; pass -scenario")
	}

	g, err := cli.ReadGraphFile(*graphPath)
	if err != nil {
		return err
	}
	p, err := cli.ReadPlatformFile(*platformPath)
	if err != nil {
		return err
	}

	if *scenario != "" {
		return runScenario(stdout, g, p, *scenario, *repairMode, *schedules, *seed, *workers, *lsBudget, *asJSON)
	}
	ev := spmap.NewEvaluator(g, p).WithSchedules(*schedules, *seed)
	if *objective == "pareto" {
		return runPareto(stdout, g, p, ev, *algo, *epsFlag, *seed, *workers, *lsBudget, *asJSON, *frontOut)
	}
	if *objective == "robust" {
		// MapRobust's default budget (4200) is tuned for the extra Samples
		// simulations per candidate; only an explicit -ls-budget overrides.
		budget := 0
		if explicit["ls-budget"] {
			budget = *lsBudget
		}
		return runRobust(stdout, g, p, ev, noise, *samples, *tailFlag, *epsFlag, *seed, *workers, budget, *asJSON, *frontOut)
	}
	var wTime, wEnergy float64
	switch *objective {
	case "time":
		wTime, wEnergy = 1, 0
	case "energy":
		wTime, wEnergy = 0, 1 // validated above: local search or -refine
	}
	start := time.Now()
	var m spmap.Mapping
	var stats *spmap.MapperStats
	var lsStats *spmap.LocalSearchStats
	var pfStats *spmap.PortfolioStats
	switch *algo {
	case "singlenode":
		m, stats, err = runDecomp(g, p, decomp.SingleNode, spmap.Basic, 0, *workers)
	case "seriesparallel":
		m, stats, err = runDecomp(g, p, decomp.SeriesParallel, spmap.Basic, 0, *workers)
	case "snfirstfit":
		m, stats, err = runDecomp(g, p, decomp.SingleNode, spmap.FirstFit, 0, *workers)
	case "spfirstfit":
		m, stats, err = runDecomp(g, p, decomp.SeriesParallel, spmap.FirstFit, 0, *workers)
	case "gamma":
		m, stats, err = runDecomp(g, p, decomp.SeriesParallel, spmap.GammaThreshold, *gamma, *workers)
	case "heft":
		m = spmap.MapHEFT(g, p)
	case "peft":
		m = spmap.MapPEFT(g, p)
	case "nsga2":
		m, _ = spmap.MapGenetic(g, p, spmap.GAOptions{Generations: *gaGens, Seed: *seed, Workers: *workers})
	case "anneal", "hillclimb":
		alg := spmap.Anneal
		if *algo == "hillclimb" {
			alg = spmap.HillClimb
		}
		// Search under the same -schedules cost function the result is
		// judged with (Refine from the baseline == MapLocalSearch, but on
		// the configured evaluator instead of the BFS-only default).
		mm, st, lerr := spmap.Refine(ev, spmap.BaselineMapping(g, p), spmap.LocalSearchOptions{
			Algorithm: alg, Seed: *seed, Workers: *workers, Budget: *lsBudget,
			WTime: wTime, WEnergy: wEnergy,
		})
		if lerr != nil {
			return lerr
		}
		m, lsStats = mm, &st
	case "portfolio":
		mm, st, perr := spmap.MapPortfolioWithEvaluator(ev, spmap.PortfolioOptions{
			Seed: *seed, Workers: *workers, Budget: *lsBudget, GapTarget: *gapTarget,
		})
		if perr != nil {
			return perr
		}
		m, pfStats = mm, &st
	case "milp-device":
		m = spmap.MapMILP(g, p, spmap.MILPWGDPDevice, *milpBudget).Mapping
	case "milp-time":
		m = spmap.MapMILP(g, p, spmap.MILPWGDPTime, *milpBudget).Mapping
	case "milp-zhouliu":
		m = spmap.MapMILP(g, p, spmap.MILPZhouLiu, *milpBudget).Mapping
	default:
		// knownAlgos and this dispatch are maintained together; a name
		// validated above but not dispatched here is a programming error,
		// not a user error.
		return fmt.Errorf("internal error: algorithm %q validated but not dispatched", *algo)
	}
	if err != nil {
		return err
	}
	if *refine && (lsStats != nil || pfStats != nil) {
		// anneal/hillclimb already are local search under ev, and the
		// portfolio contains refinement members; a second pass with the
		// same seed and budget would only duplicate the work (and
		// misreport the search effort).
		fmt.Fprintf(stderr, "spmap: -refine has no effect on -algo %s (already includes local search); skipping\n", *algo)
	} else if *refine {
		refined, rst, rerr := spmap.Refine(ev, m, spmap.LocalSearchOptions{
			Seed: *seed, Workers: *workers, Budget: *lsBudget,
			WTime: wTime, WEnergy: wEnergy,
		})
		if rerr != nil {
			return rerr
		}
		m, lsStats = refined, &rst
		if !*asJSON {
			fmt.Fprintf(stdout, "refine:      %d evaluations, %d moves\n", rst.Evaluations, rst.Moves)
		}
	}
	elapsed := time.Since(start)

	base := ev.BaselineMakespan() // cached; Improvement below reuses it
	baseEn := ev.Energy(spmap.BaselineMapping(g, p))
	ms := ev.Makespan(m)
	en := ev.Energy(m)
	if *asJSON {
		out := map[string]any{
			"algorithm":       *algo,
			"objective":       *objective,
			"mapping":         m,
			"makespan":        ms,
			"baseline":        base,
			"energy":          en,
			"baseline_energy": baseEn,
			"improvement":     spmap.Improvement(ev, m),
			"elapsed_ms":      float64(elapsed.Microseconds()) / 1000,
		}
		if stats != nil {
			out["stats"] = stats
		}
		if lsStats != nil {
			out["localsearch_stats"] = lsStats
		}
		if pfStats != nil {
			out["portfolio_stats"] = pfStats
			out["lower_bound"] = pfStats.LowerBound
			out["gap"] = pfStats.Gap
		}
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		return enc.Encode(out)
	}
	fmt.Fprintf(stdout, "algorithm:   %s\n", *algo)
	fmt.Fprintf(stdout, "objective:   %s\n", *objective)
	fmt.Fprintf(stdout, "tasks:       %d, edges: %d\n", g.NumTasks(), g.NumEdges())
	fmt.Fprintf(stdout, "baseline:    %.3f ms, %.3f J (pure %s)\n", 1e3*base, baseEn, p.Devices[p.Default].Name)
	fmt.Fprintf(stdout, "makespan:    %.3f ms\n", 1e3*ms)
	fmt.Fprintf(stdout, "energy:      %.3f J\n", en)
	fmt.Fprintf(stdout, "improvement: %.1f %%\n", 100*spmap.Improvement(ev, m))
	fmt.Fprintf(stdout, "elapsed:     %s\n", elapsed.Round(time.Microsecond))
	if pfStats != nil {
		fmt.Fprintf(stdout, "portfolio:   %d members, %d rounds, %d evaluations (budget %d), %d budget moved, cache hit rate %.0f %%\n",
			len(pfStats.Members), pfStats.Rounds, pfStats.Evaluations, *lsBudget,
			pfStats.BudgetMoved, 100*pfStats.Cache.HitRate())
		stopNote := ""
		if pfStats.GapStop {
			stopNote = fmt.Sprintf(", early stop at gap target %g (saved %d evaluations)", *gapTarget, pfStats.BudgetSaved)
		}
		fmt.Fprintf(stdout, "certified:   lower bound %.3f ms (%s), gap %.1f %%%s\n",
			1e3*pfStats.LowerBound, pfStats.BoundName, 100*pfStats.Gap, stopNote)
		for _, ms := range pfStats.Members {
			marker := " "
			if pfStats.Best >= 0 && pfStats.Members[pfStats.Best].Kind == ms.Kind {
				marker = "*"
			}
			fmt.Fprintf(stdout, "  %s%-12s budget %6d  evals %6d  syncs %3d  adopted %2d  makespan %.3f ms\n",
				marker, ms.Kind, ms.Budget, ms.Evaluations, ms.Syncs, ms.Injected, 1e3*ms.Makespan)
		}
	}
	fmt.Fprintln(stdout, "mapping:")
	for v := spmap.NodeID(0); int(v) < g.NumTasks(); v++ {
		name := g.Task(v).Name
		if name == "" {
			name = fmt.Sprintf("task%d", int(v))
		}
		fmt.Fprintf(stdout, "  %-24s -> %s\n", name, p.Devices[m[v]].Name)
	}
	if *gantt {
		fmt.Fprintln(stdout)
		if s := ev.BestSchedule(m); s != nil {
			s.WriteGantt(stdout, g, func(d int) string { return p.Devices[d].Name })
		}
	}
	if *dotOut != "" {
		f, err := os.Create(*dotOut)
		if err != nil {
			return err
		}
		err = g.WriteDOT(f, nil, func(v spmap.NodeID) int { return m[v] })
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			return err
		}
		fmt.Fprintf(stdout, "wrote %s\n", *dotOut)
	}
	return nil
}

// runScenario replays an online scenario against the graph: after each
// event (device failure/degradation, subgraph arrival/departure) the
// incumbent mapping is migrated and repaired under the -ls-budget
// per-event budget with the selected -repair mode.
func runScenario(stdout io.Writer, g *spmap.DAG, p *spmap.Platform,
	path, mode string, schedules int, seed int64, workers, budget int, asJSON bool) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	sc, err := spmap.ReadScenario(f)
	f.Close()
	if err != nil {
		return err
	}
	opt := spmap.OnlineOptions{
		Schedules: schedules, Seed: seed, Workers: workers, RepairBudget: budget,
	}
	switch mode {
	case "portfolio":
		opt.Repair = spmap.RepairPortfolio
	case "cold":
		opt.Cold = true
	}
	start := time.Now()
	m, stats, err := spmap.Replay(g, p, sc, opt)
	if err != nil {
		return err
	}
	elapsed := time.Since(start)

	if asJSON {
		out := map[string]any{
			"repair":            mode,
			"events":            stats.Events,
			"initial_makespan":  stats.InitialMakespan,
			"final_makespan":    stats.FinalMakespan,
			"final_mapping":     m,
			"total_evaluations": stats.TotalEvaluations,
			"kernel_rebuilds":   stats.KernelRebuilds,
			"elapsed_ms":        float64(elapsed.Microseconds()) / 1000,
		}
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		return enc.Encode(out)
	}
	fmt.Fprintf(stdout, "scenario:    %s (%d events, repair %s, budget %d/event)\n",
		path, len(sc.Events), mode, budget)
	fmt.Fprintf(stdout, "initial:     %d tasks, %d devices, makespan %.3f ms\n",
		stats.InitialTasks, stats.InitialDevices, 1e3*stats.InitialMakespan)
	fmt.Fprintf(stdout, "%5s %-15s %6s %4s %7s %7s %7s %12s %12s %12s\n",
		"event", "kind", "tasks", "dev", "evict", "arrive", "depart", "migrated_ms", "makespan_ms", "baseline_ms")
	for _, e := range stats.Events {
		fmt.Fprintf(stdout, "%5d %-15s %6d %4d %7d %7d %7d %12.3f %12.3f %12.3f\n",
			e.Index, e.Kind, e.Tasks, e.Devices, e.Evicted, e.Arrived, e.Departed,
			1e3*e.MigratedMakespan, 1e3*e.Makespan, 1e3*e.Baseline)
	}
	fmt.Fprintf(stdout, "final:       makespan %.3f ms, %d evaluations, %d kernel rebuilds, cache hit rate %.0f %%\n",
		1e3*stats.FinalMakespan, stats.TotalEvaluations, stats.KernelRebuilds, 100*stats.Cache.HitRate())
	fmt.Fprintf(stdout, "elapsed:     %s\n", elapsed.Round(time.Microsecond))
	return nil
}

// runPareto maps under the two-objective (makespan, energy) model and
// reports the ε-dominance front.
func runPareto(stdout io.Writer, g *spmap.DAG, p *spmap.Platform, ev *spmap.Evaluator,
	algo string, eps float64, seed int64, workers, budget int, asJSON bool, frontOut string) error {
	var palgo spmap.ParetoAlgorithm
	switch algo {
	case "nsga2":
		palgo = spmap.ParetoNSGA2
	case "sweep", "spfirstfit": // spfirstfit is the -algo flag default
		palgo = spmap.ParetoSweep
	default:
		// Unreachable: the upfront validation admits only the three names.
		return fmt.Errorf("internal error: pareto driver %q validated but not dispatched", algo)
	}
	start := time.Now()
	front, stats, err := spmap.MapParetoWithEvaluator(ev, spmap.ParetoOptions{
		Algorithm: palgo, Eps: eps, Seed: seed, Workers: workers, Budget: budget,
	})
	if err != nil {
		return err
	}
	elapsed := time.Since(start)
	base := ev.BaselineMakespan()
	baseEn := ev.Energy(spmap.BaselineMapping(g, p))
	// Hypervolume normalized by the baseline box; degenerate baselines
	// (e.g. platforms with no PowerW data) report 0 instead of NaN.
	hv := 0.0
	if base > 0 && baseEn > 0 {
		hv = front.Hypervolume(base, baseEn) / (base * baseEn)
	}

	if frontOut != "" {
		f, err := os.Create(frontOut)
		if err != nil {
			return err
		}
		err = experiments.WriteCSVFront(f, front)
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			return err
		}
	}
	if asJSON {
		type jsonPoint struct {
			Makespan float64       `json:"makespan"`
			Energy   float64       `json:"energy"`
			Mapping  spmap.Mapping `json:"mapping"`
		}
		pts := make([]jsonPoint, len(front))
		for i, pt := range front {
			pts[i] = jsonPoint{pt.Makespan(), pt.Energy(), pt.Mapping}
		}
		out := map[string]any{
			"algorithm":       palgo.String(),
			"objective":       "pareto",
			"eps":             eps,
			"front":           pts,
			"baseline":        base,
			"baseline_energy": baseEn,
			"stats":           stats,
			"hypervolume":     hv,
			"elapsed_ms":      float64(elapsed.Microseconds()) / 1000,
		}
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		return enc.Encode(out)
	}
	fmt.Fprintf(stdout, "algorithm:   %s (pareto)\n", palgo)
	fmt.Fprintf(stdout, "tasks:       %d, edges: %d\n", g.NumTasks(), g.NumEdges())
	fmt.Fprintf(stdout, "baseline:    %.3f ms, %.3f J (pure %s)\n", 1e3*base, baseEn, p.Devices[p.Default].Name)
	fmt.Fprintf(stdout, "front:       %d points (eps %g, %d candidates, %d evaluations)\n",
		stats.FrontSize, eps, stats.ArchiveSeen, stats.Evaluations)
	fmt.Fprintf(stdout, "hypervolume: %.4f (of the baseline box)\n", hv)
	fmt.Fprintf(stdout, "elapsed:     %s\n", elapsed.Round(time.Microsecond))
	fmt.Fprintf(stdout, "%12s %12s %10s %10s\n", "makespan_ms", "energy_J", "t_impr", "e_impr")
	for _, pt := range front {
		tImpr, eImpr := 0.0, 0.0
		if base > 0 && pt.Makespan() < base {
			tImpr = (base - pt.Makespan()) / base
		}
		if baseEn > 0 && pt.Energy() < baseEn {
			eImpr = (baseEn - pt.Energy()) / baseEn
		}
		fmt.Fprintf(stdout, "%12.3f %12.3f %9.1f%% %9.1f%%\n", 1e3*pt.Makespan(), pt.Energy(), 100*tImpr, 100*eImpr)
	}
	if frontOut != "" {
		fmt.Fprintf(stdout, "wrote %s\n", frontOut)
	}
	return nil
}

// runRobust maps under the three-objective (makespan, energy, tail
// makespan) stochastic cost model and reports the time × energy ×
// robustness front; the min-robust point is the uncertainty-hedged
// mapping.
func runRobust(stdout io.Writer, g *spmap.DAG, p *spmap.Platform, ev *spmap.Evaluator,
	noise spmap.NoiseModel, samples int, tail, eps float64, seed int64, workers, budget int,
	asJSON bool, frontOut string) error {
	start := time.Now()
	front, stats, err := spmap.MapRobustWithEvaluator(ev, spmap.RobustOptions{
		Noise: noise, Samples: samples, Tail: tail,
		Eps: eps, Seed: seed, Workers: workers, Budget: budget,
	})
	if err != nil {
		return err
	}
	elapsed := time.Since(start)
	base := ev.BaselineMakespan()
	baseEn := ev.Energy(spmap.BaselineMapping(g, p))

	if frontOut != "" {
		f, err := os.Create(frontOut)
		if err != nil {
			return err
		}
		err = experiments.WriteCSVFrontObjs(f, front, []string{"makespan", "energy", "robust"})
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			return err
		}
	}
	if asJSON {
		type jsonPoint struct {
			Makespan float64       `json:"makespan"`
			Energy   float64       `json:"energy"`
			Robust   float64       `json:"robust"`
			Mapping  spmap.Mapping `json:"mapping"`
		}
		pts := make([]jsonPoint, len(front))
		for i, pt := range front {
			pts[i] = jsonPoint{pt.Makespan(), pt.Energy(), pt.Objective(2), pt.Mapping}
		}
		out := map[string]any{
			"algorithm":       "nsga2",
			"objective":       "robust",
			"samples":         samples,
			"tail":            tail,
			"noise_kind":      noise.Kind.String(),
			"eps":             eps,
			"front":           pts,
			"baseline":        base,
			"baseline_energy": baseEn,
			"stats":           stats,
			"elapsed_ms":      float64(elapsed.Microseconds()) / 1000,
		}
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		return enc.Encode(out)
	}
	fmt.Fprintf(stdout, "algorithm:   nsga2 (robust)\n")
	fmt.Fprintf(stdout, "tasks:       %d, edges: %d\n", g.NumTasks(), g.NumEdges())
	fmt.Fprintf(stdout, "baseline:    %.3f ms, %.3f J (pure %s)\n", 1e3*base, baseEn, p.Devices[p.Default].Name)
	fmt.Fprintf(stdout, "noise:       %s (exec %g, device %g, transfer %g), %d samples, p%g tail\n",
		noise.Kind, noise.ExecSigma, noise.DeviceSigma, noise.TransferSigma, samples, 100*tail)
	fmt.Fprintf(stdout, "front:       %d points (eps %g, %d candidates, %d evaluations)\n",
		stats.FrontSize, eps, stats.ArchiveSeen, stats.Evaluations)
	fmt.Fprintf(stdout, "elapsed:     %s\n", elapsed.Round(time.Microsecond))
	fmt.Fprintf(stdout, "%12s %12s %12s\n", "makespan_ms", "energy_J", "robust_ms")
	for _, pt := range front {
		fmt.Fprintf(stdout, "%12.3f %12.3f %12.3f\n", 1e3*pt.Makespan(), pt.Energy(), 1e3*pt.Objective(2))
	}
	if len(front) > 0 {
		hedged := front.MinObjective(2)
		fmt.Fprintf(stdout, "hedged:      makespan %.3f ms, tail %.3f ms (min-robust point)\n",
			1e3*hedged.Makespan(), 1e3*hedged.Objective(2))
	}
	if frontOut != "" {
		fmt.Fprintf(stdout, "wrote %s\n", frontOut)
	}
	return nil
}

func runDecomp(g *spmap.DAG, p *spmap.Platform, s decomp.Strategy, h spmap.Heuristic, gamma float64, workers int) (spmap.Mapping, *spmap.MapperStats, error) {
	m, st, err := decomp.Map(g, p, decomp.Options{Strategy: s, Heuristic: h, Gamma: gamma, Workers: workers})
	if err != nil {
		return nil, nil, err
	}
	return m, &st, nil
}
