// Command spmap maps a task graph (JSON) onto a heterogeneous platform
// and prints the resulting assignment, makespan and improvement.
//
// Usage:
//
//	spmap -graph app.json [-platform platform.json] [-algo spfirstfit]
//	      [-schedules 100] [-gamma 2] [-refine] [-json]
//	      [-objective time|energy|pareto] [-eps 0.01] [-front front.csv]
//
// Algorithms: singlenode, seriesparallel, snfirstfit, spfirstfit, gamma,
// heft, peft, nsga2, anneal, hillclimb, milp-device, milp-time,
// milp-zhouliu. The -refine flag polishes any algorithm's mapping with
// local-search refinement (never worse, deterministic under -seed for
// any -workers value).
//
// The -objective flag selects the optimization target: "time" (the
// default single-objective makespan), "energy" (pure compute energy;
// requires the local-search algorithms or -refine), or "pareto" (the
// full makespan x energy trade-off: -algo nsga2 selects the
// two-objective NSGA-II driver, anything else the weighted local-search
// sweep; the front is printed, exported as CSV via -front, and bounded
// by the ε-dominance resolution -eps).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"spmap"
	"spmap/internal/experiments"
	"spmap/internal/graph"
	"spmap/internal/mappers/decomp"
	"spmap/internal/platform"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("spmap: ")
	var (
		graphPath    = flag.String("graph", "", "task graph JSON file (required)")
		platformPath = flag.String("platform", "", "platform JSON file (default: paper reference platform)")
		algo         = flag.String("algo", "spfirstfit", "mapping algorithm")
		schedules    = flag.Int("schedules", 100, "random schedules in the cost function")
		gamma        = flag.Float64("gamma", 2, "gamma for -algo gamma")
		gaGens       = flag.Int("generations", 500, "NSGA-II generations")
		milpBudget   = flag.Duration("milp-budget", 30*time.Second, "MILP time limit")
		lsBudget     = flag.Int("ls-budget", 0, "local-search / -refine evaluation budget (0 = default 50100)")
		refine       = flag.Bool("refine", false, "polish the mapping with local-search refinement")
		objective    = flag.String("objective", "time", "optimization objective: time, energy, or pareto")
		epsFlag      = flag.Float64("eps", 0, "Pareto archive ε-grid resolution for -objective pareto (0 = exact front)")
		frontOut     = flag.String("front", "", "write the Pareto front as CSV to this file (-objective pareto)")
		workers      = flag.Int("workers", 0, "evaluation-engine worker pool (0 = GOMAXPROCS; results are identical)")
		seed         = flag.Int64("seed", 1, "RNG seed (schedules, GA, local search)")
		asJSON       = flag.Bool("json", false, "emit machine-readable JSON")
		dotOut       = flag.String("dot", "", "write the mapped task graph as Graphviz DOT to this file")
		gantt        = flag.Bool("gantt", false, "print a textual Gantt chart of the best schedule")
	)
	flag.Parse()
	if *graphPath == "" {
		flag.Usage()
		os.Exit(2)
	}

	g, err := readGraph(*graphPath)
	if err != nil {
		log.Fatal(err)
	}
	p := spmap.ReferencePlatform()
	if *platformPath != "" {
		f, err := os.Open(*platformPath)
		if err != nil {
			log.Fatal(err)
		}
		p, err = platform.Read(f)
		f.Close()
		if err != nil {
			log.Fatal(err)
		}
	}

	ev := spmap.NewEvaluator(g, p).WithSchedules(*schedules, *seed)
	if *objective == "pareto" {
		runPareto(g, p, ev, *algo, *epsFlag, *seed, *workers, *lsBudget, *asJSON, *frontOut)
		return
	}
	var wTime, wEnergy float64
	switch *objective {
	case "time":
		wTime, wEnergy = 1, 0
	case "energy":
		wTime, wEnergy = 0, 1
		if *algo != "anneal" && *algo != "hillclimb" && !*refine {
			log.Fatalf("-objective energy requires -algo anneal|hillclimb or -refine " +
				"(the other mappers optimize the makespan only)")
		}
	default:
		log.Fatalf("unknown objective %q (time, energy, pareto)", *objective)
	}
	start := time.Now()
	var m spmap.Mapping
	var stats *spmap.MapperStats
	var lsStats *spmap.LocalSearchStats
	switch *algo {
	case "singlenode":
		m, stats = runDecomp(g, p, decomp.SingleNode, spmap.Basic, 0, *workers)
	case "seriesparallel":
		m, stats = runDecomp(g, p, decomp.SeriesParallel, spmap.Basic, 0, *workers)
	case "snfirstfit":
		m, stats = runDecomp(g, p, decomp.SingleNode, spmap.FirstFit, 0, *workers)
	case "spfirstfit":
		m, stats = runDecomp(g, p, decomp.SeriesParallel, spmap.FirstFit, 0, *workers)
	case "gamma":
		m, stats = runDecomp(g, p, decomp.SeriesParallel, spmap.GammaThreshold, *gamma, *workers)
	case "heft":
		m = spmap.MapHEFT(g, p)
	case "peft":
		m = spmap.MapPEFT(g, p)
	case "nsga2":
		m, _ = spmap.MapGenetic(g, p, spmap.GAOptions{Generations: *gaGens, Seed: *seed, Workers: *workers})
	case "anneal", "hillclimb":
		alg := spmap.Anneal
		if *algo == "hillclimb" {
			alg = spmap.HillClimb
		}
		// Search under the same -schedules cost function the result is
		// judged with (Refine from the baseline == MapLocalSearch, but on
		// the configured evaluator instead of the BFS-only default).
		mm, st, err := spmap.Refine(ev, spmap.BaselineMapping(g, p), spmap.LocalSearchOptions{
			Algorithm: alg, Seed: *seed, Workers: *workers, Budget: *lsBudget,
			WTime: wTime, WEnergy: wEnergy,
		})
		if err != nil {
			log.Fatal(err)
		}
		m, lsStats = mm, &st
	case "milp-device":
		m = spmap.MapMILP(g, p, spmap.MILPWGDPDevice, *milpBudget).Mapping
	case "milp-time":
		m = spmap.MapMILP(g, p, spmap.MILPWGDPTime, *milpBudget).Mapping
	case "milp-zhouliu":
		m = spmap.MapMILP(g, p, spmap.MILPZhouLiu, *milpBudget).Mapping
	default:
		log.Fatalf("unknown algorithm %q", *algo)
	}
	if *refine && lsStats != nil {
		// anneal/hillclimb already are local search under ev; a second
		// refinement pass with the same seed and budget would only
		// duplicate the work (and misreport the search effort).
		log.Printf("-refine has no effect on -algo %s (already local search); skipping", *algo)
	} else if *refine {
		refined, rst, err := spmap.Refine(ev, m, spmap.LocalSearchOptions{
			Seed: *seed, Workers: *workers, Budget: *lsBudget,
			WTime: wTime, WEnergy: wEnergy,
		})
		if err != nil {
			log.Fatal(err)
		}
		m, lsStats = refined, &rst
		if !*asJSON {
			fmt.Printf("refine:      %d evaluations, %d moves\n", rst.Evaluations, rst.Moves)
		}
	}
	elapsed := time.Since(start)

	base := ev.BaselineMakespan() // cached; Improvement below reuses it
	baseEn := ev.Energy(spmap.BaselineMapping(g, p))
	ms := ev.Makespan(m)
	en := ev.Energy(m)
	if *asJSON {
		out := map[string]any{
			"algorithm":       *algo,
			"objective":       *objective,
			"mapping":         m,
			"makespan":        ms,
			"baseline":        base,
			"energy":          en,
			"baseline_energy": baseEn,
			"improvement":     spmap.Improvement(ev, m),
			"elapsed_ms":      float64(elapsed.Microseconds()) / 1000,
		}
		if stats != nil {
			out["stats"] = stats
		}
		if lsStats != nil {
			out["localsearch_stats"] = lsStats
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(out); err != nil {
			log.Fatal(err)
		}
		return
	}
	fmt.Printf("algorithm:   %s\n", *algo)
	fmt.Printf("objective:   %s\n", *objective)
	fmt.Printf("tasks:       %d, edges: %d\n", g.NumTasks(), g.NumEdges())
	fmt.Printf("baseline:    %.3f ms, %.3f J (pure %s)\n", 1e3*base, baseEn, p.Devices[p.Default].Name)
	fmt.Printf("makespan:    %.3f ms\n", 1e3*ms)
	fmt.Printf("energy:      %.3f J\n", en)
	fmt.Printf("improvement: %.1f %%\n", 100*spmap.Improvement(ev, m))
	fmt.Printf("elapsed:     %s\n", elapsed.Round(time.Microsecond))
	fmt.Println("mapping:")
	for v := spmap.NodeID(0); int(v) < g.NumTasks(); v++ {
		name := g.Task(v).Name
		if name == "" {
			name = fmt.Sprintf("task%d", int(v))
		}
		fmt.Printf("  %-24s -> %s\n", name, p.Devices[m[v]].Name)
	}
	if *gantt {
		fmt.Println()
		if s := ev.BestSchedule(m); s != nil {
			s.WriteGantt(os.Stdout, g, func(d int) string { return p.Devices[d].Name })
		}
	}
	if *dotOut != "" {
		f, err := os.Create(*dotOut)
		if err != nil {
			log.Fatal(err)
		}
		err = g.WriteDOT(f, nil, func(v spmap.NodeID) int { return m[v] })
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("wrote %s\n", *dotOut)
	}
}

// runPareto maps under the two-objective (makespan, energy) model and
// reports the ε-dominance front.
func runPareto(g *spmap.DAG, p *spmap.Platform, ev *spmap.Evaluator,
	algo string, eps float64, seed int64, workers, budget int, asJSON bool, frontOut string) {
	var palgo spmap.ParetoAlgorithm
	switch algo {
	case "nsga2":
		palgo = spmap.ParetoNSGA2
	case "sweep", "spfirstfit": // spfirstfit is the -algo flag default
		palgo = spmap.ParetoSweep
	default:
		log.Fatalf("-objective pareto supports -algo sweep (default) or nsga2, not %q", algo)
	}
	start := time.Now()
	front, stats, err := spmap.MapParetoWithEvaluator(ev, spmap.ParetoOptions{
		Algorithm: palgo, Eps: eps, Seed: seed, Workers: workers, Budget: budget,
	})
	if err != nil {
		log.Fatal(err)
	}
	elapsed := time.Since(start)
	base := ev.BaselineMakespan()
	baseEn := ev.Energy(spmap.BaselineMapping(g, p))
	// Hypervolume normalized by the baseline box; degenerate baselines
	// (e.g. platforms with no PowerW data) report 0 instead of NaN.
	hv := 0.0
	if base > 0 && baseEn > 0 {
		hv = front.Hypervolume(base, baseEn) / (base * baseEn)
	}

	if frontOut != "" {
		f, err := os.Create(frontOut)
		if err != nil {
			log.Fatal(err)
		}
		err = experiments.WriteCSVFront(f, front)
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			log.Fatal(err)
		}
	}
	if asJSON {
		type jsonPoint struct {
			Makespan float64       `json:"makespan"`
			Energy   float64       `json:"energy"`
			Mapping  spmap.Mapping `json:"mapping"`
		}
		pts := make([]jsonPoint, len(front))
		for i, pt := range front {
			pts[i] = jsonPoint{pt.Makespan, pt.Energy, pt.Mapping}
		}
		out := map[string]any{
			"algorithm":       palgo.String(),
			"objective":       "pareto",
			"eps":             eps,
			"front":           pts,
			"baseline":        base,
			"baseline_energy": baseEn,
			"stats":           stats,
			"hypervolume":     hv,
			"elapsed_ms":      float64(elapsed.Microseconds()) / 1000,
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(out); err != nil {
			log.Fatal(err)
		}
		return
	}
	fmt.Printf("algorithm:   %s (pareto)\n", palgo)
	fmt.Printf("tasks:       %d, edges: %d\n", g.NumTasks(), g.NumEdges())
	fmt.Printf("baseline:    %.3f ms, %.3f J (pure %s)\n", 1e3*base, baseEn, p.Devices[p.Default].Name)
	fmt.Printf("front:       %d points (eps %g, %d candidates, %d evaluations)\n",
		stats.FrontSize, eps, stats.ArchiveSeen, stats.Evaluations)
	fmt.Printf("hypervolume: %.4f (of the baseline box)\n", hv)
	fmt.Printf("elapsed:     %s\n", elapsed.Round(time.Microsecond))
	fmt.Printf("%12s %12s %10s %10s\n", "makespan_ms", "energy_J", "t_impr", "e_impr")
	for _, pt := range front {
		tImpr, eImpr := 0.0, 0.0
		if base > 0 && pt.Makespan < base {
			tImpr = (base - pt.Makespan) / base
		}
		if baseEn > 0 && pt.Energy < baseEn {
			eImpr = (baseEn - pt.Energy) / baseEn
		}
		fmt.Printf("%12.3f %12.3f %9.1f%% %9.1f%%\n", 1e3*pt.Makespan, pt.Energy, 100*tImpr, 100*eImpr)
	}
	if frontOut != "" {
		fmt.Printf("wrote %s\n", frontOut)
	}
}

func runDecomp(g *spmap.DAG, p *spmap.Platform, s decomp.Strategy, h spmap.Heuristic, gamma float64, workers int) (spmap.Mapping, *spmap.MapperStats) {
	m, st, err := decomp.Map(g, p, decomp.Options{Strategy: s, Heuristic: h, Gamma: gamma, Workers: workers})
	if err != nil {
		log.Fatal(err)
	}
	return m, &st
}

func readGraph(path string) (*spmap.DAG, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	g, err := graph.Read(f)
	if err != nil {
		return nil, err
	}
	if err := g.Validate(); err != nil {
		return nil, err
	}
	return g, nil
}
