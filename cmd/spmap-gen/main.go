// Command spmap-gen generates task graphs as JSON: random series-parallel
// graphs, almost series-parallel graphs with extra conflicting edges
// (paper §IV-B/C), synthetic WfCommons-like workflow instances (§IV-D),
// the reference platform, or online-replay scenarios for spmap -scenario.
//
// Usage:
//
//	spmap-gen -kind sp -n 100 > app.json
//	spmap-gen -kind almost-sp -n 100 -extra 50 > app.json
//	spmap-gen -kind workflow -family montage -scale 3 > app.json
//	spmap-gen -kind platform > platform.json
//	spmap-gen -kind scenario -events 8 > scenario.json
//
// Unknown -kind/-family names and nonsensical numeric flags
// (non-positive -n/-scale/-events, negative -extra) exit with status 2
// and a usage message instead of producing garbage or panicking.
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"math/rand"
	"os"

	"spmap"
	"spmap/internal/cli"
	"spmap/internal/wf"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("spmap-gen: ")
	cli.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// isUsageError classifies option-validation failures (exit status 2).
func isUsageError(err error) bool { return cli.IsUsage(err) }

// run is main's testable body: it parses and validates args and writes
// the generated artifact to stdout (a summary goes to stderr). Errors
// of type usageError (and flag parse errors, which the FlagSet reports
// to stderr itself) correspond to exit status 2.
func run(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("spmap-gen", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		kind   = fs.String("kind", "sp", "sp | almost-sp | workflow | platform | scenario")
		n      = fs.Int("n", 50, "number of tasks (sp, almost-sp; > 0)")
		extra  = fs.Int("extra", 20, "extra conflicting edges (almost-sp; >= 0)")
		family = fs.String("family", "montage", "workflow family (1000genome, blast, bwa, cycles, epigenomics, montage, seismology, soykb, srasearch)")
		scale  = fs.Int("scale", 1, "workflow scale factor (> 0)")
		events = fs.Int("events", 6, "scenario event count (scenario; > 0)")
		seed   = fs.Int64("seed", 1, "RNG seed")
	)
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return err
		}
		// The FlagSet already reported the problem and the usage to
		// stderr; classify it for main's exit-2 path without reprinting.
		return cli.Usage(err)
	}
	usage := func(format string, a ...any) error {
		err := cli.Usage(fmt.Errorf(format, a...))
		fmt.Fprintf(stderr, "spmap-gen: %v\n", err)
		fs.Usage()
		return err
	}
	var fam wf.Family
	switch *kind {
	case "sp", "almost-sp":
		if *n <= 0 {
			return usage("-n must be > 0, got %d", *n)
		}
		if *kind == "almost-sp" && *extra < 0 {
			return usage("-extra must be >= 0, got %d", *extra)
		}
	case "workflow":
		var ok bool
		if fam, ok = familyByName(*family); !ok {
			return usage("unknown family %q", *family)
		}
		if *scale <= 0 {
			return usage("-scale must be > 0, got %d", *scale)
		}
	case "platform":
	case "scenario":
		if *events <= 0 {
			return usage("-events must be > 0, got %d", *events)
		}
	default:
		return usage("unknown kind %q (sp, almost-sp, workflow, platform, scenario)", *kind)
	}

	rng := rand.New(rand.NewSource(*seed))
	switch *kind {
	case "platform":
		return spmap.ReferencePlatform().Write(stdout)
	case "scenario":
		// Fail/degrade targets are drawn against the reference platform's
		// geometry (3 devices, host device 0) — the same default spmap
		// replays scenarios on.
		p := spmap.ReferencePlatform()
		sc := spmap.NewScenario(rng, spmap.ScenarioOptions{
			Events: *events, Devices: p.NumDevices(), DefaultDevice: p.Default,
		})
		if err := sc.Write(stdout); err != nil {
			return err
		}
		fmt.Fprintf(stderr, "generated %d events\n", len(sc.Events))
		return nil
	}

	var g *spmap.DAG
	switch *kind {
	case "sp":
		g = spmap.RandomSeriesParallel(rng, *n)
	case "almost-sp":
		g = spmap.RandomAlmostSeriesParallel(rng, *n, *extra)
	case "workflow":
		g = spmap.GenerateWorkflow(fam, *scale, rng)
	}
	if err := g.Validate(); err != nil {
		return fmt.Errorf("generated graph invalid: %v", err)
	}
	if _, err := g.WriteTo(stdout); err != nil {
		return err
	}
	fmt.Fprintf(stderr, "generated %d tasks, %d edges\n", g.NumTasks(), g.NumEdges())
	return nil
}

func familyByName(name string) (wf.Family, bool) {
	for _, f := range wf.Families() {
		if f.String() == name {
			return f, true
		}
	}
	return 0, false
}
