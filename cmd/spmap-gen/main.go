// Command spmap-gen generates task graphs as JSON: random series-parallel
// graphs, almost series-parallel graphs with extra conflicting edges
// (paper §IV-B/C) or synthetic WfCommons-like workflow instances (§IV-D).
//
// Usage:
//
//	spmap-gen -kind sp -n 100 > app.json
//	spmap-gen -kind almost-sp -n 100 -extra 50 > app.json
//	spmap-gen -kind workflow -family montage -scale 3 > app.json
//	spmap-gen -kind platform > platform.json
package main

import (
	"flag"
	"fmt"
	"log"
	"math/rand"
	"os"

	"spmap"
	"spmap/internal/wf"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("spmap-gen: ")
	var (
		kind   = flag.String("kind", "sp", "sp | almost-sp | workflow | platform")
		n      = flag.Int("n", 50, "number of tasks (sp, almost-sp)")
		extra  = flag.Int("extra", 20, "extra conflicting edges (almost-sp)")
		family = flag.String("family", "montage", "workflow family (1000genome, blast, bwa, cycles, epigenomics, montage, seismology, soykb, srasearch)")
		scale  = flag.Int("scale", 1, "workflow scale factor")
		seed   = flag.Int64("seed", 1, "RNG seed")
	)
	flag.Parse()
	rng := rand.New(rand.NewSource(*seed))

	if *kind == "platform" {
		p := spmap.ReferencePlatform()
		if err := p.Write(os.Stdout); err != nil {
			log.Fatal(err)
		}
		return
	}

	var g *spmap.DAG
	switch *kind {
	case "sp":
		g = spmap.RandomSeriesParallel(rng, *n)
	case "almost-sp":
		g = spmap.RandomAlmostSeriesParallel(rng, *n, *extra)
	case "workflow":
		fam, ok := familyByName(*family)
		if !ok {
			log.Fatalf("unknown family %q", *family)
		}
		g = spmap.GenerateWorkflow(fam, *scale, rng)
	default:
		log.Fatalf("unknown kind %q", *kind)
	}
	if err := g.Validate(); err != nil {
		log.Fatalf("generated graph invalid: %v", err)
	}
	if _, err := g.WriteTo(os.Stdout); err != nil {
		log.Fatal(err)
	}
	fmt.Fprintf(os.Stderr, "generated %d tasks, %d edges\n", g.NumTasks(), g.NumEdges())
}

func familyByName(name string) (wf.Family, bool) {
	for _, f := range wf.Families() {
		if f.String() == name {
			return f, true
		}
	}
	return 0, false
}
