package main

import (
	"bytes"
	"encoding/json"
	"io"
	"strings"
	"testing"

	"spmap/internal/gen"
	"spmap/internal/graph"
)

// TestGenFlagValidation drives run's flag-parsing path (the mirror of
// cmd/spmap's treatment): unknown -kind/-family names and nonsensical
// numeric flags must fail as usage errors (exit status 2 in main)
// instead of producing garbage or panicking.
func TestGenFlagValidation(t *testing.T) {
	cases := []struct {
		name string
		args []string
		want string // substring of the error
	}{
		{"unknown kind", []string{"-kind", "torus"}, `unknown kind "torus"`},
		{"unknown family", []string{"-kind", "workflow", "-family", "skynet"}, `unknown family "skynet"`},
		{"zero n", []string{"-kind", "sp", "-n", "0"}, "-n must be > 0"},
		{"negative n", []string{"-kind", "almost-sp", "-n", "-10"}, "-n must be > 0"},
		{"negative extra", []string{"-kind", "almost-sp", "-extra", "-1"}, "-extra must be >= 0"},
		{"zero scale", []string{"-kind", "workflow", "-scale", "0"}, "-scale must be > 0"},
		{"negative scale", []string{"-kind", "workflow", "-scale", "-3"}, "-scale must be > 0"},
		{"zero events", []string{"-kind", "scenario", "-events", "0"}, "-events must be > 0"},
		{"undeclared flag", []string{"-frobnicate"}, ""}, // FlagSet's own error
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var stderr bytes.Buffer
			err := run(tc.args, io.Discard, &stderr)
			if err == nil {
				t.Fatalf("args %q accepted; want a usage error", tc.args)
			}
			if !isUsageError(err) {
				t.Fatalf("args %q: error %v is not a usage error (would not exit 2)", tc.args, err)
			}
			if tc.want != "" {
				if !strings.Contains(err.Error(), tc.want) {
					t.Fatalf("args %q: error %q does not contain %q", tc.args, err, tc.want)
				}
				if out := stderr.String(); !strings.Contains(out, "Usage") && !strings.Contains(out, "-kind") {
					t.Fatalf("args %q: no usage message on stderr:\n%s", tc.args, out)
				}
			}
		})
	}
}

// TestGenKinds runs every kind end to end and checks the emitted JSON
// parses as what it claims to be.
func TestGenKinds(t *testing.T) {
	t.Run("sp", func(t *testing.T) {
		g := genGraph(t, "-kind", "sp", "-n", "20")
		if g.NumTasks() < 20 {
			t.Fatalf("sp graph has %d tasks, want >= 20", g.NumTasks())
		}
	})
	t.Run("almost-sp", func(t *testing.T) {
		g := genGraph(t, "-kind", "almost-sp", "-n", "20", "-extra", "5")
		if g.NumTasks() < 20 {
			t.Fatalf("almost-sp graph has %d tasks, want >= 20", g.NumTasks())
		}
	})
	t.Run("workflow", func(t *testing.T) {
		g := genGraph(t, "-kind", "workflow", "-family", "montage", "-scale", "1")
		if g.NumTasks() == 0 {
			t.Fatal("empty workflow graph")
		}
	})
	t.Run("platform", func(t *testing.T) {
		out := genOutput(t, "-kind", "platform")
		var p map[string]any
		if err := json.Unmarshal(out, &p); err != nil {
			t.Fatalf("platform output is not JSON: %v", err)
		}
		if _, ok := p["devices"]; !ok {
			t.Fatal("platform JSON has no devices")
		}
	})
	t.Run("scenario", func(t *testing.T) {
		out := genOutput(t, "-kind", "scenario", "-events", "7", "-seed", "3")
		sc, err := gen.ReadScenario(bytes.NewReader(out))
		if err != nil {
			t.Fatalf("scenario output does not parse: %v", err)
		}
		if len(sc.Events) != 7 {
			t.Fatalf("scenario has %d events, want 7", len(sc.Events))
		}
	})
}

// TestGenDeterministic pins that equal seeds yield byte-identical
// output.
func TestGenDeterministic(t *testing.T) {
	for _, args := range [][]string{
		{"-kind", "sp", "-n", "15", "-seed", "9"},
		{"-kind", "scenario", "-events", "5", "-seed", "9"},
	} {
		a := genOutput(t, args...)
		b := genOutput(t, args...)
		if !bytes.Equal(a, b) {
			t.Fatalf("args %q: output not deterministic", args)
		}
	}
}

func genOutput(t *testing.T, args ...string) []byte {
	t.Helper()
	var stdout bytes.Buffer
	if err := run(args, &stdout, io.Discard); err != nil {
		t.Fatal(err)
	}
	return stdout.Bytes()
}

func genGraph(t *testing.T, args ...string) *graph.DAG {
	t.Helper()
	g, err := graph.Read(bytes.NewReader(genOutput(t, args...)))
	if err != nil {
		t.Fatal(err)
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	return g
}
