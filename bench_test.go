// Benchmarks regenerating the paper's figures and tables (one bench per
// experiment; run `go test -bench=. -benchmem`) plus micro-benchmarks of
// the core machinery. The per-figure benches execute a reduced quick
// profile per iteration and print the reproduced series via b.Log on the
// first iteration; cmd/spmap-bench is the full console harness.
package spmap_test

import (
	"math/rand"
	"strings"
	"testing"
	"time"

	"spmap"
	"spmap/internal/experiments"
	"spmap/internal/gen"
	"spmap/internal/mappers/decomp"
	"spmap/internal/mappers/ga"
	"spmap/internal/mappers/heft"
	"spmap/internal/mapping"
	"spmap/internal/model"
	"spmap/internal/platform"
	"spmap/internal/sp"
)

// benchCfg is a minimal profile so `go test -bench=.` stays tractable.
func benchCfg() experiments.Config {
	return experiments.Config{
		GraphsPerPoint: 2,
		Schedules:      10,
		GAGenerations:  30,
		MILPTimeLimit:  500 * time.Millisecond,
		Seed:           1,
	}
}

func logTable(b *testing.B, t *experiments.Table) {
	b.Helper()
	var sb strings.Builder
	t.Print(&sb)
	b.Log("\n" + sb.String())
}

func BenchmarkFig3MILPsVsDecomposition(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t := experiments.Fig3(benchCfg())
		if i == 0 {
			logTable(b, t)
		}
	}
}

func BenchmarkFig4ListSchedulingVsDecomposition(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t := experiments.Fig4(benchCfg())
		if i == 0 {
			logTable(b, t)
		}
	}
}

func BenchmarkFig5GeneticVsFirstFit(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t := experiments.Fig5(benchCfg())
		if i == 0 {
			logTable(b, t)
		}
	}
}

func BenchmarkFig6GenerationsTradeoff(b *testing.B) {
	cfg := benchCfg()
	for i := 0; i < b.N; i++ {
		t := experiments.Fig6(cfg)
		if i == 0 {
			logTable(b, t)
		}
	}
}

func BenchmarkFig7AlmostSeriesParallel(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t := experiments.Fig7(benchCfg())
		if i == 0 {
			logTable(b, t)
		}
	}
}

func BenchmarkTable1Workflows(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := experiments.Table1(benchCfg())
		if i == 0 {
			var sb strings.Builder
			experiments.PrintTable1(&sb, rows)
			b.Log("\n" + sb.String())
		}
	}
}

func BenchmarkAblationCutPolicy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t := experiments.CutPolicyAblation(benchCfg())
		if i == 0 {
			logTable(b, t)
		}
	}
}

func BenchmarkAblationGamma(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t := experiments.GammaAblation(benchCfg())
		if i == 0 {
			logTable(b, t)
		}
	}
}

func BenchmarkAblationScheduleCount(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t := experiments.ScheduleCountAblation(benchCfg())
		if i == 0 {
			logTable(b, t)
		}
	}
}

// --- micro-benchmarks of the core machinery ---

func benchGraph(n int) *spmap.DAG {
	rng := rand.New(rand.NewSource(1))
	return gen.SeriesParallel(rng, n, gen.DefaultAttr())
}

func BenchmarkEvaluatorMakespanBFS100(b *testing.B) {
	g := benchGraph(100)
	p := platform.Reference()
	ev := model.NewEvaluator(g, p)
	m := mapping.Baseline(g, p)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ev.Makespan(m)
	}
}

func BenchmarkEvaluator101Schedules100(b *testing.B) {
	g := benchGraph(100)
	p := platform.Reference()
	ev := model.NewEvaluator(g, p).WithSchedules(100, 1)
	m := mapping.Baseline(g, p)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ev.Makespan(m)
	}
}

func BenchmarkDecomposeSP200(b *testing.B) {
	g := benchGraph(200)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sp.Decompose(g, sp.Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDecomposeAlmostSP200(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	g := gen.AlmostSeriesParallel(rng, 200, 100, gen.DefaultAttr())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sp.Decompose(g, sp.Options{Seed: int64(i)}); err != nil {
			b.Fatal(err)
		}
	}
}

func benchMapper(b *testing.B, n int, strat decomp.Strategy, h decomp.Heuristic) {
	g := benchGraph(n)
	p := platform.Reference()
	ev := model.NewEvaluator(g, p).WithSchedules(20, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := decomp.MapWithEvaluator(ev, decomp.Options{Strategy: strat, Heuristic: h}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMapSingleNodeBasic100(b *testing.B) {
	benchMapper(b, 100, decomp.SingleNode, decomp.Basic)
}

func BenchmarkMapSeriesParallelBasic100(b *testing.B) {
	benchMapper(b, 100, decomp.SeriesParallel, decomp.Basic)
}

func BenchmarkMapSNFirstFit100(b *testing.B) {
	benchMapper(b, 100, decomp.SingleNode, decomp.FirstFit)
}

func BenchmarkMapSPFirstFit100(b *testing.B) {
	benchMapper(b, 100, decomp.SeriesParallel, decomp.FirstFit)
}

func BenchmarkMapHEFT100(b *testing.B) {
	g := benchGraph(100)
	p := platform.Reference()
	ev := model.NewEvaluator(g, p)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		heft.MapWithEvaluator(ev, heft.HEFT)
	}
}

func BenchmarkMapPEFT100(b *testing.B) {
	g := benchGraph(100)
	p := platform.Reference()
	ev := model.NewEvaluator(g, p)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		heft.MapWithEvaluator(ev, heft.PEFT)
	}
}

func BenchmarkMapNSGAII100Gen50(b *testing.B) {
	g := benchGraph(100)
	p := platform.Reference()
	ev := model.NewEvaluator(g, p).WithSchedules(20, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ga.MapWithEvaluator(ev, ga.Options{Generations: 50, Seed: int64(i)})
	}
}

func BenchmarkGenerateSP200(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rng := rand.New(rand.NewSource(int64(i)))
		gen.SeriesParallel(rng, 200, gen.DefaultAttr())
	}
}
