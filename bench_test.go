// Benchmarks regenerating the paper's figures and tables (one bench per
// experiment; run `go test -bench=. -benchmem`) plus micro-benchmarks of
// the core machinery. The per-figure benches execute a reduced quick
// profile per iteration and print the reproduced series via b.Log on the
// first iteration; cmd/spmap-bench is the full console harness.
package spmap_test

import (
	"math"
	"math/rand"
	"strings"
	"testing"
	"time"

	"spmap"
	"spmap/internal/eval"
	"spmap/internal/experiments"
	"spmap/internal/gen"
	"spmap/internal/graph"
	"spmap/internal/mappers/decomp"
	"spmap/internal/mappers/ga"
	"spmap/internal/mappers/heft"
	"spmap/internal/mappers/localsearch"
	"spmap/internal/mapping"
	"spmap/internal/model"
	"spmap/internal/pareto"
	"spmap/internal/platform"
	"spmap/internal/portfolio"
	"spmap/internal/sp"
)

// benchCfg is a minimal profile so `go test -bench=.` stays tractable.
func benchCfg() experiments.Config {
	return experiments.Config{
		GraphsPerPoint: 2,
		Schedules:      10,
		GAGenerations:  30,
		MILPTimeLimit:  500 * time.Millisecond,
		Seed:           1,
	}
}

func logTable(b *testing.B, t *experiments.Table) {
	b.Helper()
	var sb strings.Builder
	t.Print(&sb)
	b.Log("\n" + sb.String())
}

func BenchmarkFig3MILPsVsDecomposition(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t := experiments.Fig3(benchCfg())
		if i == 0 {
			logTable(b, t)
		}
	}
}

func BenchmarkFig4ListSchedulingVsDecomposition(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t := experiments.Fig4(benchCfg())
		if i == 0 {
			logTable(b, t)
		}
	}
}

func BenchmarkFig5GeneticVsFirstFit(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t := experiments.Fig5(benchCfg())
		if i == 0 {
			logTable(b, t)
		}
	}
}

func BenchmarkFig6GenerationsTradeoff(b *testing.B) {
	cfg := benchCfg()
	for i := 0; i < b.N; i++ {
		t := experiments.Fig6(cfg)
		if i == 0 {
			logTable(b, t)
		}
	}
}

func BenchmarkFig7AlmostSeriesParallel(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t := experiments.Fig7(benchCfg())
		if i == 0 {
			logTable(b, t)
		}
	}
}

func BenchmarkTable1Workflows(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := experiments.Table1(benchCfg())
		if i == 0 {
			var sb strings.Builder
			experiments.PrintTable1(&sb, rows)
			b.Log("\n" + sb.String())
		}
	}
}

func BenchmarkAblationCutPolicy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t := experiments.CutPolicyAblation(benchCfg())
		if i == 0 {
			logTable(b, t)
		}
	}
}

func BenchmarkAblationGamma(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t := experiments.GammaAblation(benchCfg())
		if i == 0 {
			logTable(b, t)
		}
	}
}

func BenchmarkAblationScheduleCount(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t := experiments.ScheduleCountAblation(benchCfg())
		if i == 0 {
			logTable(b, t)
		}
	}
}

// --- micro-benchmarks of the core machinery ---

func benchGraph(n int) *spmap.DAG {
	rng := rand.New(rand.NewSource(1))
	return gen.SeriesParallel(rng, n, gen.DefaultAttr())
}

func BenchmarkEvaluatorMakespanBFS100(b *testing.B) {
	g := benchGraph(100)
	p := platform.Reference()
	ev := model.NewEvaluator(g, p)
	m := mapping.Baseline(g, p)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ev.Makespan(m)
	}
}

func BenchmarkEvaluator101Schedules100(b *testing.B) {
	g := benchGraph(100)
	p := platform.Reference()
	ev := model.NewEvaluator(g, p).WithSchedules(100, 1)
	m := mapping.Baseline(g, p)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ev.Makespan(m)
	}
}

func BenchmarkDecomposeSP200(b *testing.B) {
	g := benchGraph(200)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sp.Decompose(g, sp.Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDecomposeAlmostSP200(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	g := gen.AlmostSeriesParallel(rng, 200, 100, gen.DefaultAttr())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sp.Decompose(g, sp.Options{Seed: int64(i)}); err != nil {
			b.Fatal(err)
		}
	}
}

func benchMapper(b *testing.B, n int, strat decomp.Strategy, h decomp.Heuristic) {
	g := benchGraph(n)
	p := platform.Reference()
	ev := model.NewEvaluator(g, p).WithSchedules(20, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := decomp.MapWithEvaluator(ev, decomp.Options{Strategy: strat, Heuristic: h}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMapSingleNodeBasic100(b *testing.B) {
	benchMapper(b, 100, decomp.SingleNode, decomp.Basic)
}

func BenchmarkMapSeriesParallelBasic100(b *testing.B) {
	benchMapper(b, 100, decomp.SeriesParallel, decomp.Basic)
}

func BenchmarkMapSNFirstFit100(b *testing.B) {
	benchMapper(b, 100, decomp.SingleNode, decomp.FirstFit)
}

func BenchmarkMapSPFirstFit100(b *testing.B) {
	benchMapper(b, 100, decomp.SeriesParallel, decomp.FirstFit)
}

func BenchmarkMapHEFT100(b *testing.B) {
	g := benchGraph(100)
	p := platform.Reference()
	ev := model.NewEvaluator(g, p)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		heft.MapWithEvaluator(ev, heft.HEFT)
	}
}

func BenchmarkMapPEFT100(b *testing.B) {
	g := benchGraph(100)
	p := platform.Reference()
	ev := model.NewEvaluator(g, p)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		heft.MapWithEvaluator(ev, heft.PEFT)
	}
}

func BenchmarkMapNSGAII100Gen50(b *testing.B) {
	g := benchGraph(100)
	p := platform.Reference()
	ev := model.NewEvaluator(g, p).WithSchedules(20, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ga.MapWithEvaluator(ev, ga.Options{Generations: 50, Seed: int64(i)})
	}
}

// Local-search benchmarks: end-to-end mapper runs under the paper's
// 101-schedule protocol at a fixed engine-evaluation budget, plus the
// GA at the same budget (default population x 50 generations + the
// initial population = 5100 evaluations) for the equal-budget
// comparison that BENCH_PR2.json records.

const equalBudget = ga.DefaultPopulation * 51

func benchLocalSearch(b *testing.B, n int, alg localsearch.Algorithm) {
	g := benchGraph(n)
	p := platform.Reference()
	ev := model.NewEvaluator(g, p).WithSchedules(100, 1)
	ev.Makespan(mapping.Baseline(g, p)) // compile the kernel outside the timed region
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := localsearch.MapWithEvaluator(ev, localsearch.Options{
			Algorithm: alg, Seed: 1, Budget: equalBudget,
		}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMapAnneal50(b *testing.B)     { benchLocalSearch(b, 50, localsearch.Anneal) }
func BenchmarkMapAnneal100(b *testing.B)    { benchLocalSearch(b, 100, localsearch.Anneal) }
func BenchmarkMapAnneal250(b *testing.B)    { benchLocalSearch(b, 250, localsearch.Anneal) }
func BenchmarkMapHillClimb50(b *testing.B)  { benchLocalSearch(b, 50, localsearch.HillClimb) }
func BenchmarkMapHillClimb100(b *testing.B) { benchLocalSearch(b, 100, localsearch.HillClimb) }
func BenchmarkMapHillClimb250(b *testing.B) { benchLocalSearch(b, 250, localsearch.HillClimb) }

// BenchmarkMapNSGAIIEqualBudget100 is the GA at exactly the
// local-search benchmarks' evaluation budget — the ns/op ratio against
// BenchmarkMapAnneal100 / BenchmarkMapHillClimb100 is the wall-clock
// price of one evaluation budget under either metaheuristic.
func BenchmarkMapNSGAIIEqualBudget100(b *testing.B) {
	g := benchGraph(100)
	p := platform.Reference()
	ev := model.NewEvaluator(g, p).WithSchedules(100, 1)
	ev.Makespan(mapping.Baseline(g, p))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ga.MapWithEvaluator(ev, ga.Options{Generations: equalBudget/ga.DefaultPopulation - 1, Seed: 1})
	}
}

// BenchmarkRefineSPFirstFit100 measures the refinement pass alone on a
// decomposition mapping (half the equal budget, as in the experiments).
func BenchmarkRefineSPFirstFit100(b *testing.B) {
	g := benchGraph(100)
	p := platform.Reference()
	ev := model.NewEvaluator(g, p).WithSchedules(100, 1)
	m, _, err := decomp.MapWithEvaluator(ev, decomp.Options{
		Strategy: decomp.SeriesParallel, Heuristic: decomp.FirstFit,
	})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := localsearch.Refine(ev, m, localsearch.Options{Seed: 1, Budget: equalBudget / 2}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkGenerateSP200(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rng := rand.New(rand.NewSource(int64(i)))
		gen.SeriesParallel(rng, 200, gen.DefaultAttr())
	}
}

// --- evaluation-engine benchmarks (the BENCH_*.json perf trajectory) ---
//
// The three families below anchor the before/after comparison across
// PRs: single Makespan evaluation under the paper's 101-schedule
// protocol, one batched neighborhood re-evaluation with the incumbent
// as cutoff, and the end-to-end series-parallel Basic mapper.

func benchmarkMakespan101(b *testing.B, n int) {
	g := benchGraph(n)
	p := platform.Reference()
	ev := model.NewEvaluator(g, p).WithSchedules(100, 1)
	m := mapping.Baseline(g, p)
	ev.Makespan(m) // compile the kernel outside the timed region
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ev.Makespan(m)
	}
}

func BenchmarkMakespan50(b *testing.B)  { benchmarkMakespan101(b, 50) }
func BenchmarkMakespan100(b *testing.B) { benchmarkMakespan101(b, 100) }
func BenchmarkMakespan250(b *testing.B) { benchmarkMakespan101(b, 250) }

func benchmarkEvaluateBatch(b *testing.B, n int) {
	g := benchGraph(n)
	p := platform.Reference()
	eng := model.NewEvaluator(g, p).WithSchedules(100, 1).Engine()
	base := mapping.Baseline(g, p)
	// The single-task move neighborhood of the baseline, evaluated
	// against the incumbent — the decomposition mappers' hot loop.
	var ops []eval.Op
	for v := 0; v < g.NumTasks(); v++ {
		for d := 0; d < p.NumDevices(); d++ {
			ops = append(ops, eval.Op{Base: base, Patch: []graph.NodeID{graph.NodeID(v)}, Device: d})
		}
	}
	incumbent := eng.Makespan(base)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		eng.EvaluateBatch(ops, incumbent)
	}
}

func BenchmarkEvaluateBatch50(b *testing.B)  { benchmarkEvaluateBatch(b, 50) }
func BenchmarkEvaluateBatch100(b *testing.B) { benchmarkEvaluateBatch(b, 100) }
func BenchmarkEvaluateBatch250(b *testing.B) { benchmarkEvaluateBatch(b, 250) }

func benchmarkMapSeriesParallelE2E(b *testing.B, n int) {
	g := benchGraph(n)
	p := platform.Reference()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// End to end: evaluator + kernel compilation and the full Basic
		// mapper under the paper's 101-schedule protocol.
		ev := model.NewEvaluator(g, p).WithSchedules(100, 1)
		if _, _, err := decomp.MapWithEvaluator(ev, decomp.Options{
			Strategy: decomp.SeriesParallel, Heuristic: decomp.Basic,
		}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMapSeriesParallelE2E50(b *testing.B)  { benchmarkMapSeriesParallelE2E(b, 50) }
func BenchmarkMapSeriesParallelE2E100(b *testing.B) { benchmarkMapSeriesParallelE2E(b, 100) }
func BenchmarkMapSeriesParallelE2E250(b *testing.B) { benchmarkMapSeriesParallelE2E(b, 250) }

// --- multi-objective benchmarks (BENCH_PR3.json) ---
//
// benchmarkEvaluateBatchMO is benchmarkEvaluateBatch with (makespan,
// energy) pairs: the ns/op delta against BenchmarkEvaluateBatch<n> is
// the marginal cost of the engine-level energy objective.

func benchmarkEvaluateBatchMO(b *testing.B, n int) {
	g := benchGraph(n)
	p := platform.Reference()
	eng := model.NewEvaluator(g, p).WithSchedules(100, 1).Engine()
	base := mapping.Baseline(g, p)
	var ops []eval.Op
	for v := 0; v < g.NumTasks(); v++ {
		for d := 0; d < p.NumDevices(); d++ {
			ops = append(ops, eval.Op{Base: base, Patch: []graph.NodeID{graph.NodeID(v)}, Device: d})
		}
	}
	incumbent := eng.Makespan(base)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		eng.EvaluateBatchMO(ops, incumbent)
	}
}

func BenchmarkEvaluateBatchMO50(b *testing.B)  { benchmarkEvaluateBatchMO(b, 50) }
func BenchmarkEvaluateBatchMO100(b *testing.B) { benchmarkEvaluateBatchMO(b, 100) }
func BenchmarkEvaluateBatchMO250(b *testing.B) { benchmarkEvaluateBatchMO(b, 250) }

// benchmarkEngineEnergy times the standalone energy objective (one
// O(n) table pass plus the feasibility scan).
func benchmarkEngineEnergy(b *testing.B, n int) {
	g := benchGraph(n)
	p := platform.Reference()
	eng := model.NewEvaluator(g, p).WithSchedules(100, 1).Engine()
	m := mapping.Baseline(g, p)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		eng.Energy(m)
	}
}

func BenchmarkEngineEnergy50(b *testing.B)  { benchmarkEngineEnergy(b, 50) }
func BenchmarkEngineEnergy100(b *testing.B) { benchmarkEngineEnergy(b, 100) }
func BenchmarkEngineEnergy250(b *testing.B) { benchmarkEngineEnergy(b, 250) }

// benchmarkMapParetoSweep runs the weighted-sweep driver at the equal-
// budget anchor (split across the default weights) under the paper's
// 101-schedule protocol.
func benchmarkMapParetoSweep(b *testing.B, n int) {
	g := benchGraph(n)
	p := platform.Reference()
	ev := model.NewEvaluator(g, p).WithSchedules(100, 1)
	ev.Makespan(mapping.Baseline(g, p)) // compile outside the timed region
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := pareto.WeightedSweep(ev, pareto.SweepOptions{
			Seed: 1, Budget: equalBudget / len(pareto.DefaultWeights),
		}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMapParetoSweep50(b *testing.B)  { benchmarkMapParetoSweep(b, 50) }
func BenchmarkMapParetoSweep100(b *testing.B) { benchmarkMapParetoSweep(b, 100) }
func BenchmarkMapParetoSweep250(b *testing.B) { benchmarkMapParetoSweep(b, 250) }

// BenchmarkMapParetoNSGA2EqualBudget100 is the two-objective NSGA-II
// at the same total evaluation budget as the sweep benchmarks.
func BenchmarkMapParetoNSGA2EqualBudget100(b *testing.B) {
	g := benchGraph(100)
	p := platform.Reference()
	ev := model.NewEvaluator(g, p).WithSchedules(100, 1)
	ev.Makespan(mapping.Baseline(g, p))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ga.MapParetoWithEvaluator(ev, ga.ParetoOptions{
			Generations: equalBudget/ga.DefaultPopulation - 1, Seed: 1,
		})
	}
}

// Portfolio benchmarks: the full racing portfolio at the equal-budget
// anchor under the paper's 101-schedule protocol, with and without the
// shared evaluation cache — the ns/op ratio is the wall-clock saving
// cross-mapper memoization buys (results are bit-identical either way;
// BENCH_PR4.json records the numbers).

func benchmarkMapPortfolio(b *testing.B, n int, disableCache bool) {
	g := benchGraph(n)
	p := platform.Reference()
	ev := model.NewEvaluator(g, p).WithSchedules(100, 1)
	ev.Makespan(mapping.Baseline(g, p)) // compile the kernel outside the timed region
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := portfolio.MapWithEvaluator(ev, portfolio.Options{
			Seed: 1, Budget: equalBudget, DisableCache: disableCache,
		}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMapPortfolio50(b *testing.B)         { benchmarkMapPortfolio(b, 50, false) }
func BenchmarkMapPortfolio100(b *testing.B)        { benchmarkMapPortfolio(b, 100, false) }
func BenchmarkMapPortfolio250(b *testing.B)        { benchmarkMapPortfolio(b, 250, false) }
func BenchmarkMapPortfolioNoCache50(b *testing.B)  { benchmarkMapPortfolio(b, 50, true) }
func BenchmarkMapPortfolioNoCache100(b *testing.B) { benchmarkMapPortfolio(b, 100, true) }
func BenchmarkMapPortfolioNoCache250(b *testing.B) { benchmarkMapPortfolio(b, 250, true) }

// BenchmarkEvaluateBatchCached100 re-evaluates one warm neighborhood
// batch through the memoizing cache — the engine-level upper bound of
// the cache's saving (every op a hit).
func BenchmarkEvaluateBatchCached100(b *testing.B) {
	g := benchGraph(100)
	p := platform.Reference()
	eng := spmap.NewEngine(g, p, 100, 1).WithCache(eval.NewCache())
	base := mapping.Baseline(g, p)
	var ops []eval.Op
	patches := make([]graph.NodeID, g.NumTasks())
	for v := 0; v < g.NumTasks(); v++ {
		patches[v] = graph.NodeID(v)
		for d := 0; d < p.NumDevices(); d++ {
			if d != base[v] {
				ops = append(ops, eval.Op{Base: base, Patch: patches[v : v+1], Device: d})
			}
		}
	}
	eng.EvaluateBatch(ops, math.Inf(1)) // warm the cache
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		eng.EvaluateBatch(ops, math.Inf(1))
	}
}

// Online replay benchmarks: a mixed 6-event scenario replayed against a
// live instance under the paper's 101-schedule protocol, warm-start
// repair vs cold per-event re-mapping at the same per-event budget —
// the wall-clock counterpart of the quality comparison in
// BENCH_PR5.json (warm is never worse on the seed graphs and spends
// less simulation time per event because the incumbent seeds the
// search).

func benchmarkReplay(b *testing.B, n int, cold bool) {
	g := benchGraph(n)
	p := platform.Reference()
	sc := spmap.NewScenario(rand.New(rand.NewSource(2)), spmap.ScenarioOptions{Events: 6})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := spmap.Replay(g, p, sc, spmap.OnlineOptions{
			Schedules: 100, Seed: 1, RepairBudget: 2000, Cold: cold,
		}); err != nil {
			b.Fatal(err)
		}
	}
}

// --- incremental-session benchmarks (BENCH_PR6.json) ---
//
// One steady-state session move under the paper's 101-schedule
// protocol. Evaluate<n> is the pure candidate-rejection path (cutoff =
// incumbent, nothing applied): the global capacity bound plus bounded
// resumed replays. Move<n> interleaves one Apply every 8 candidates, so
// the lazy-apply folds (the windowed recording rebase) are amortized
// into the per-move cost the way a real search pays them. Run with
// -benchmem: the scratch-reuse audit pins 0 allocs/op for both.

func benchmarkIncrementalSession(b *testing.B, n, acceptEvery int) {
	g := benchGraph(n)
	p := platform.Reference()
	eng := model.NewEvaluator(g, p).WithSchedules(100, 1).Engine().WithWorkers(1)
	inc := eng.Incremental(mapping.Baseline(g, p), nil)
	defer inc.Close()
	cur := inc.Makespan()
	nd := p.NumDevices()
	patch := make([]graph.NodeID, 1)
	rng := rand.New(rand.NewSource(2))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		patch[0] = graph.NodeID(rng.Intn(n))
		dev := rng.Intn(nd)
		inc.Evaluate(patch, dev, cur)
		if acceptEvery > 0 && i%acceptEvery == acceptEvery-1 {
			inc.Apply(patch, dev)
			cur = inc.Makespan() // track the moving incumbent exactly
		}
	}
}

func BenchmarkIncrementalEvaluate50(b *testing.B)  { benchmarkIncrementalSession(b, 50, 0) }
func BenchmarkIncrementalEvaluate100(b *testing.B) { benchmarkIncrementalSession(b, 100, 0) }
func BenchmarkIncrementalEvaluate250(b *testing.B) { benchmarkIncrementalSession(b, 250, 0) }
func BenchmarkIncrementalMove50(b *testing.B)      { benchmarkIncrementalSession(b, 50, 8) }
func BenchmarkIncrementalMove100(b *testing.B)     { benchmarkIncrementalSession(b, 100, 8) }
func BenchmarkIncrementalMove250(b *testing.B)     { benchmarkIncrementalSession(b, 250, 8) }

func BenchmarkReplayWarm50(b *testing.B)  { benchmarkReplay(b, 50, false) }
func BenchmarkReplayCold50(b *testing.B)  { benchmarkReplay(b, 50, true) }
func BenchmarkReplayWarm100(b *testing.B) { benchmarkReplay(b, 100, false) }
func BenchmarkReplayCold100(b *testing.B) { benchmarkReplay(b, 100, true) }
func BenchmarkReplayPortfolioRepair50(b *testing.B) {
	g := benchGraph(50)
	p := platform.Reference()
	sc := spmap.NewScenario(rand.New(rand.NewSource(2)), spmap.ScenarioOptions{Events: 6})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := spmap.Replay(g, p, sc, spmap.OnlineOptions{
			Schedules: 100, Seed: 1, RepairBudget: 2000, Repair: spmap.RepairPortfolio,
		}); err != nil {
			b.Fatal(err)
		}
	}
}
