package spmap_test

// Golden Pareto front corpus: the multi-objective drivers' fronts on
// the three seed graphs (the same instances TestGoldenLocalSearch
// pins), captured at 20 random schedules, schedule seed = graph seed,
// sweep budget 600 per weight, NSGA-II population 20 x 10 generations.
// Each golden string renders every front point byte-exactly — objective
// bit patterns plus the mapping — so any drift in the engine's energy
// arithmetic, the archive's tie-breaking, the RNG streams or the
// selection rules shows up here.

import (
	"math/rand"
	"testing"

	"spmap/internal/gen"
	"spmap/internal/mappers/ga"
	"spmap/internal/model"
	"spmap/internal/pareto"
	"spmap/internal/platform"
)

type paretoGoldenRow struct {
	seed         int64
	sweep, nsga2 string
}

var paretoGoldenRows = []paretoGoldenRow{
	{1,
		"(3fe3333412c885cb,4057bf188c310259,202022222022220020012220000222)(3fe3a082561b6e79,40551dc4e0ac68c2,202022222122200021222220000222)(3fe5631ef9c41327,40518d9538400bc3,102001200002220221222222002222)(3fe66a94609064bc,40445bdd0c91f033,122121200022220111222221202221)(3feea3d4d69555f0,403a58f84bce6013,122111211112022111222211222212)",
		"(3fe5b45003386263,40668a4fce3efc2d,000001000000000000000000000000)(3fe5c5b4c5cbfed3,406606aff32c67b1,000001000000000000000000000011)(3fe7040f3bd01513,4064641f6ec496b9,020001000000000000000000200000)(3fe828a673984614,406286cf2a247f7b,200000200000200020000000000000)(3fe98476ab881320,405de08509294112,020101000000010100000001222000)(3fedfbfd151957f0,405d863404c1c289,202010200000200020000010000222)(3fefd2a9e5d3f6eb,405c31215833c0c5,202000210100220021000010000220)(3ff054592623a100,405ab611324ab97a,222010200000200020000010200022)(3ff063328c9e8de2,405a97914718ea5d,202010211000200020002010000222)(3ff084f70637d52d,4056233020c7f5ec,202010211100220021020010002222)(3ff177d7629e8afd,404f0742ea7dd2ac,222020200200200121000011222220)(3ff200d924559d31,404e70bfdceac961,222000210100220121000011222220)(3ff2db11a3217265,4046c6ed67886630,222110211000210120002011222222)"},
	{2,
		"(3fe5a77a2aec30d5,404747031bc03bce,212202012122201102212120222122)(3fe603daf644a5d1,4041850db87115a6,212222012122201102212122220122)(3fe69845d4ae25ed,4034dbabc44662a0,212202212122121122112120211122)(3fe9b3d304ae9668,4028cb43775a0c5c,212222212122121122112120211122)(3fecb00a831e718d,4016ce582a1c05be,212222212122121122111112211121)",
		"(3febd8d9f116b54e,4066c1e4434fc1bf,000000000000000000000000000000)(3fec3075a21b15d8,406465e62432d895,000000010000000000000000000000)(3fed1608d54912aa,405f0ff2ab345c2b,002202002020000000001010200022)(3fed6da4864d7334,405a57f66cfa89d6,002202012020000000001010200022)(3fed845cb5149b45,4057e29f6789074d,012202012020000000001010200022)(3ff4db582483b471,404ade774a4ca3c1,002222212220020200011102200222)"},
	{3,
		"(3feaf488515d0402,405739df435b92c1,002102111012222002222200202210)(3feecceb7c9e0ef5,4051e438a2e83948,120212202102110122022122212201)(3feece4062f3fe9e,404eb4e3fc93da26,120212202102112122022122212101)(3ff80dd3b26ec183,403c97a68382f120,112111221222110222012122220121)(3ffb40953e1b68ff,4033d4a0384db2d7,112111211122110222212122222111)",
		"(3fefcf390b379117,406841973b61f0dc,000000000000010000000000000000)(3ff04b4be10179c4,40682e250f207945,000000000000000000000000020000)(3ff0e1a126c92160,4066588bc4f3a017,000001000000020000100000020002)(3ff0edbc6a20373c,4063cdcc177920b7,002000020020000000000000000100)(3ff114b6cc84b89a,4063090a89bad62c,002000020020100000000000000100)(3ff1786627ea69d2,40622ebfa999376b,002000020020120000000000020102)(3ff20ebb6db2116e,4060caa8f38f4a9a,002001020020120000000000020102)(3ff2ab9b1c2cbfd0,405b38bcd62e73da,002021020220100000011220220102)(3ff4635fd7aada44,404dc91900d3389e,002222220222100022000020220212)"},
}

// TestGoldenParetoFronts pins the sweep and NSGA-II fronts on the seed
// graphs bit-for-bit, and re-validates the acceptance contract on the
// pinned data: mutual non-domination and feasibility of every front
// point.
func TestGoldenParetoFronts(t *testing.T) {
	p := platform.Reference()
	for _, row := range paretoGoldenRows {
		rng := rand.New(rand.NewSource(row.seed))
		g := gen.SeriesParallel(rng, 30, gen.DefaultAttr())
		ev := model.NewEvaluator(g, p).WithSchedules(20, row.seed)

		sweep, _, err := pareto.WeightedSweep(ev, pareto.SweepOptions{Seed: row.seed, Budget: 600})
		if err != nil {
			t.Fatal(err)
		}
		nsga2, _ := ga.MapParetoWithEvaluator(ev, ga.ParetoOptions{
			Population: 20, Generations: 10, Seed: row.seed,
		})
		for _, c := range []struct {
			what  string
			front pareto.Front
			want  string
		}{
			{"WeightedSweep", sweep, row.sweep},
			{"NSGA2", nsga2, row.nsga2},
		} {
			if got := frontFingerprint(c.front); got != c.want {
				t.Errorf("seed %d %s: front changed\n got %s\nwant %s", row.seed, c.what, got, c.want)
			}
			for i, a := range c.front {
				if !a.Mapping.Feasible(g, p) {
					t.Errorf("seed %d %s: front point %d infeasible", row.seed, c.what, i)
				}
				for j, b := range c.front {
					if i != j && b.Makespan() <= a.Makespan() && b.Energy() <= a.Energy() &&
						(b.Makespan() < a.Makespan() || b.Energy() < a.Energy()) {
						t.Errorf("seed %d %s: front point %d dominated by %d", row.seed, c.what, i, j)
					}
				}
			}
		}
	}
}
