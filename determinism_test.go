package spmap_test

// Determinism matrix: every mapper, run with a fixed seed, must produce
// an identical mapping and identical stats across repeated runs and
// across engine worker counts. This is the contract that makes the
// batch engine safe to put under every mapper: EvaluateBatch results
// are index-aligned and all random draws happen on the calling
// goroutine, so parallelism must never leak into results.

import (
	"fmt"
	"math"
	"math/rand"
	"testing"

	"spmap/internal/eval"
	"spmap/internal/gen"
	"spmap/internal/mappers/decomp"
	"spmap/internal/mappers/ga"
	"spmap/internal/mappers/heft"
	"spmap/internal/mappers/localsearch"
	"spmap/internal/mapping"
	"spmap/internal/model"
	"spmap/internal/online"
	"spmap/internal/pareto"
	"spmap/internal/platform"
	"spmap/internal/portfolio"
)

// frontFingerprint renders a Pareto front byte-exactly: per point the
// objective bit patterns plus the mapping digits.
func frontFingerprint(f pareto.Front) string {
	s := ""
	for _, p := range f {
		s += "("
		for _, v := range p.Vec {
			s += fmt.Sprintf("%016x,", math.Float64bits(v))
		}
		s += mappingString(p.Mapping) + ")"
	}
	return s
}

// determinismResult fingerprints one mapper run: the mapping plus a
// stats rendering (fmt-formatted so new stats fields are picked up
// automatically).
type determinismResult struct {
	mapping string
	stats   string
}

func TestMapperDeterminismMatrix(t *testing.T) {
	const seed = 42
	p := platform.Reference()
	rng := rand.New(rand.NewSource(3))
	g := gen.AlmostSeriesParallel(rng, 35, 12, gen.DefaultAttr()) // non-SP: exercises cuts too
	newEval := func() *model.Evaluator {
		return model.NewEvaluator(g, p).WithSchedules(8, seed)
	}

	cases := []struct {
		name string
		run  func(ev *model.Evaluator, workers int) determinismResult
	}{
		{"decomp/SingleNode/Basic", func(ev *model.Evaluator, workers int) determinismResult {
			m, st, err := decomp.MapWithEvaluator(ev, decomp.Options{
				Strategy: decomp.SingleNode, Heuristic: decomp.Basic, Workers: workers,
			})
			if err != nil {
				t.Fatal(err)
			}
			return determinismResult{mappingString(m), fmt.Sprintf("%+v", st)}
		}},
		{"decomp/SeriesParallel/Basic", func(ev *model.Evaluator, workers int) determinismResult {
			m, st, err := decomp.MapWithEvaluator(ev, decomp.Options{
				Strategy: decomp.SeriesParallel, Heuristic: decomp.Basic, Workers: workers,
			})
			if err != nil {
				t.Fatal(err)
			}
			return determinismResult{mappingString(m), fmt.Sprintf("%+v", st)}
		}},
		{"decomp/SeriesParallel/FirstFit", func(ev *model.Evaluator, workers int) determinismResult {
			m, st, err := decomp.MapWithEvaluator(ev, decomp.Options{
				Strategy: decomp.SeriesParallel, Heuristic: decomp.FirstFit, Workers: workers,
			})
			if err != nil {
				t.Fatal(err)
			}
			return determinismResult{mappingString(m), fmt.Sprintf("%+v", st)}
		}},
		{"decomp/SeriesParallel/Gamma2", func(ev *model.Evaluator, workers int) determinismResult {
			m, st, err := decomp.MapWithEvaluator(ev, decomp.Options{
				Strategy: decomp.SeriesParallel, Heuristic: decomp.GammaThreshold, Gamma: 2, Workers: workers,
			})
			if err != nil {
				t.Fatal(err)
			}
			return determinismResult{mappingString(m), fmt.Sprintf("%+v", st)}
		}},
		{"heft/HEFT", func(ev *model.Evaluator, workers int) determinismResult {
			return determinismResult{mappingString(heft.MapWithEvaluator(ev, heft.HEFT)), ""}
		}},
		{"heft/PEFT", func(ev *model.Evaluator, workers int) determinismResult {
			return determinismResult{mappingString(heft.MapWithEvaluator(ev, heft.PEFT)), ""}
		}},
		{"ga/NSGAII", func(ev *model.Evaluator, workers int) determinismResult {
			m, st := ga.MapWithEvaluator(ev, ga.Options{Generations: 12, Seed: seed, Workers: workers})
			// BestPerGeneration is a slice; include it via %+v too.
			return determinismResult{mappingString(m), fmt.Sprintf("%+v", st)}
		}},
		{"localsearch/Anneal", func(ev *model.Evaluator, workers int) determinismResult {
			m, st, err := localsearch.MapWithEvaluator(ev, localsearch.Options{
				Algorithm: localsearch.Anneal, Seed: seed, Workers: workers, Budget: 1500,
			})
			if err != nil {
				t.Fatal(err)
			}
			return determinismResult{mappingString(m), fmt.Sprintf("%+v", st)}
		}},
		{"localsearch/HillClimb", func(ev *model.Evaluator, workers int) determinismResult {
			m, st, err := localsearch.MapWithEvaluator(ev, localsearch.Options{
				Algorithm: localsearch.HillClimb, Seed: seed, Workers: workers, Budget: 1500,
			})
			if err != nil {
				t.Fatal(err)
			}
			return determinismResult{mappingString(m), fmt.Sprintf("%+v", st)}
		}},
		{"localsearch/Refine(HEFT)", func(ev *model.Evaluator, workers int) determinismResult {
			m, st, err := localsearch.Refine(ev, heft.MapWithEvaluator(ev, heft.HEFT), localsearch.Options{
				Seed: seed, Workers: workers, Budget: 1200,
			})
			if err != nil {
				t.Fatal(err)
			}
			return determinismResult{mappingString(m), fmt.Sprintf("%+v", st)}
		}},
		// Multi-objective mappers: the mapping under test is the front's
		// min-makespan point; the stats fingerprint pins the whole front
		// (objective bit patterns + mappings) plus the driver stats, so
		// any worker-count or rerun divergence anywhere on the front
		// fails the matrix.
		{"localsearch/AnnealWeighted", func(ev *model.Evaluator, workers int) determinismResult {
			m, st, err := localsearch.MapWithEvaluator(ev, localsearch.Options{
				Algorithm: localsearch.Anneal, Seed: seed, Workers: workers, Budget: 1200,
				WTime: 0.5, WEnergy: 0.5,
			})
			if err != nil {
				t.Fatal(err)
			}
			return determinismResult{mappingString(m), fmt.Sprintf("%+v", st)}
		}},
		{"localsearch/HillClimbEnergy", func(ev *model.Evaluator, workers int) determinismResult {
			m, st, err := localsearch.MapWithEvaluator(ev, localsearch.Options{
				Algorithm: localsearch.HillClimb, Seed: seed, Workers: workers, Budget: 1200,
				WTime: 0, WEnergy: 1,
			})
			if err != nil {
				t.Fatal(err)
			}
			return determinismResult{mappingString(m), fmt.Sprintf("%+v", st)}
		}},
		{"pareto/Sweep", func(ev *model.Evaluator, workers int) determinismResult {
			front, st, err := pareto.WeightedSweep(ev, pareto.SweepOptions{
				Seed: seed, Workers: workers, Budget: 400,
			})
			if err != nil {
				t.Fatal(err)
			}
			if len(front) == 0 {
				t.Fatal("empty front")
			}
			return determinismResult{
				mappingString(front.MinMakespan().Mapping),
				fmt.Sprintf("%+v|%s", st, frontFingerprint(front)),
			}
		}},
		// The portfolio races all members on real goroutines with the
		// shared evaluation cache; mapping and all deterministic stats
		// (cache telemetry excluded — it is wall-clock-dependent by
		// design and zeroed by Deterministic) must be byte-identical.
		{"portfolio", func(ev *model.Evaluator, workers int) determinismResult {
			m, st, err := portfolio.MapWithEvaluator(ev, portfolio.Options{
				Seed: seed, Workers: workers, Budget: 2400,
			})
			if err != nil {
				t.Fatal(err)
			}
			return determinismResult{mappingString(m), fmt.Sprintf("%+v", st.Deterministic())}
		}},
		// Online replay: a mixed scenario (arrival, degradation, failure,
		// departure) replayed on the shared instance. The stats fingerprint
		// is the full byte-exact replay trace; the case itself additionally
		// pins cache on == cache off, so the matrix covers the contract's
		// whole (Workers x cache) grid. The scenario ends balanced (the
		// arrival departs again), so the final mapping validates against
		// the matrix's original graph.
		{"online/Replay", func(ev *model.Evaluator, workers int) determinismResult {
			sc := gen.Scenario{Events: []gen.Event{
				{Time: 1, Kind: gen.TaskArrive, Tasks: 5, Seed: 11},
				{Time: 2, Kind: gen.DeviceDegrade, Device: 1, SpeedScale: 0.6, BandwidthScale: 0.8},
				{Time: 3, Kind: gen.DeviceFail, Device: 2},
				{Time: 4, Kind: gen.TaskDepart, Arrival: 0},
			}}
			var m mapping.Mapping
			var trace string
			for _, disableCache := range []bool{false, true} {
				mm, st, err := online.Replay(g, p, sc, online.Options{
					Schedules: 5, Seed: seed, RepairBudget: 600,
					Workers: workers, DisableCache: disableCache,
				})
				if err != nil {
					t.Fatal(err)
				}
				if tr := st.Trace(); trace == "" {
					m, trace = mm, tr
				} else if tr != trace {
					t.Fatalf("replay trace diverged between cache on and off:\n%s\nvs\n%s", trace, tr)
				}
			}
			return determinismResult{mappingString(m), trace}
		}},
		{"ga/NSGA2Pareto", func(ev *model.Evaluator, workers int) determinismResult {
			front, st := ga.MapParetoWithEvaluator(ev, ga.ParetoOptions{
				Population: 16, Generations: 8, Seed: seed, Workers: workers,
			})
			if len(front) == 0 {
				t.Fatal("empty front")
			}
			return determinismResult{
				mappingString(front.MinMakespan().Mapping),
				fmt.Sprintf("%+v|%s", st, frontFingerprint(front)),
			}
		}},
		// The robust (-objective robust) driver: three-objective NSGA-II
		// with the Monte-Carlo tail makespan. The case itself additionally
		// pins cache on == cache off (the robust objective bypasses the
		// cache, the nominal columns honor its exactness contract), so the
		// matrix covers the full (Workers x cache x rerun) grid at one
		// fixed seed.
		{"ga/NSGA2ParetoRobust", func(ev *model.Evaluator, workers int) determinismResult {
			robust, err := eval.NewRobustObjective(eval.NoiseModel{
				Kind: eval.NoiseLognormal, ExecSigma: 0.2, DeviceSigma: 0.1,
				TransferSigma: 0.15, Seed: 7,
			}, 6, 0.9, eval.RobustTail)
			if err != nil {
				t.Fatal(err)
			}
			objs := []eval.Objective{eval.MakespanObjective(), eval.EnergyObjective(), robust}
			var res determinismResult
			for i, withCache := range []bool{false, true} {
				e := ev
				if withCache {
					e = ev.Clone().WithEngine(ev.Engine().WithCache(eval.NewCache()))
				}
				front, st := ga.MapParetoWithEvaluator(e, ga.ParetoOptions{
					Population: 12, Generations: 5, Seed: seed, Workers: workers,
					Objectives: objs,
				})
				if len(front) == 0 {
					t.Fatal("empty front")
				}
				got := determinismResult{
					mappingString(front.MinMakespan().Mapping),
					fmt.Sprintf("%+v|%s", st, frontFingerprint(front)),
				}
				if i == 0 {
					res = got
				} else if got != res {
					t.Fatalf("robust front diverged between cache off and on:\n%+v\nvs\n%+v", res, got)
				}
			}
			return res
		}},
	}

	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var ref determinismResult
			first := true
			for _, workers := range []int{1, 4} {
				for run := 0; run < 2; run++ {
					// A fresh evaluator per run: engine compilation and any
					// internal caching must not influence results either.
					got := tc.run(newEval(), workers)
					if first {
						ref = got
						first = false
						continue
					}
					if got.mapping != ref.mapping {
						t.Fatalf("workers=%d run=%d: mapping diverged\n got %s\nwant %s",
							workers, run, got.mapping, ref.mapping)
					}
					if got.stats != ref.stats {
						t.Fatalf("workers=%d run=%d: stats diverged\n got %s\nwant %s",
							workers, run, got.stats, ref.stats)
					}
				}
			}
			// The mapping must be valid and area-feasible on top of stable.
			m := make(mapping.Mapping, g.NumTasks())
			for i, c := range ref.mapping {
				m[i] = int(c - '0')
			}
			if err := m.Validate(g, p); err != nil {
				t.Fatal(err)
			}
			if !m.Feasible(g, p) {
				t.Fatalf("mapping violates device area capacities: %s", ref.mapping)
			}
		})
	}
}
