module spmap

go 1.24
