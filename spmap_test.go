package spmap_test

import (
	"math/rand"
	"testing"

	"spmap"
)

// TestFacadeEndToEnd exercises the public API the way the README
// quickstart does.
func TestFacadeEndToEnd(t *testing.T) {
	g := spmap.NewDAG()
	a := g.AddTask(spmap.Task{Name: "a", Complexity: 4, Parallelizability: 1, Streamability: 8, Area: 4, SourceBytes: 100e6})
	b := g.AddTask(spmap.Task{Name: "b", Complexity: 9, Parallelizability: 0.8, Streamability: 12, Area: 9})
	c := g.AddTask(spmap.Task{Name: "c", Complexity: 5, Parallelizability: 0.2, Streamability: 5, Area: 5})
	g.AddEdge(a, b, 100e6)
	g.AddEdge(b, c, 100e6)
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if !spmap.IsSeriesParallel(g) {
		t.Fatal("a chain is series-parallel")
	}
	p := spmap.ReferencePlatform()
	ev := spmap.NewEvaluator(g, p).WithSchedules(50, 1)
	m, stats, err := spmap.MapSeriesParallel(g, p, spmap.FirstFit)
	if err != nil {
		t.Fatal(err)
	}
	if len(m) != g.NumTasks() {
		t.Fatal("mapping length mismatch")
	}
	if stats.Makespan <= 0 {
		t.Fatal("stats must report the makespan")
	}
	if imp := spmap.Improvement(ev, m); imp < 0 || imp > 1 {
		t.Fatalf("improvement out of range: %v", imp)
	}
}

func TestFacadeAlgorithms(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	g := spmap.RandomSeriesParallel(rng, 20)
	p := spmap.ReferencePlatform()
	ev := spmap.NewEvaluator(g, p).WithSchedules(20, 1)
	base := ev.Makespan(spmap.BaselineMapping(g, p))

	check := func(name string, m spmap.Mapping) {
		t.Helper()
		if err := m.Validate(g, p); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if ms := ev.Makespan(m); ms <= 0 || ms > base*10 {
			t.Fatalf("%s: absurd makespan %v (baseline %v)", name, ms, base)
		}
	}
	msn, _, err := spmap.MapSingleNode(g, p, spmap.Basic)
	if err != nil {
		t.Fatal(err)
	}
	check("single-node", msn)
	mgt, _, err := spmap.MapGammaThreshold(g, p, 2)
	if err != nil {
		t.Fatal(err)
	}
	check("gamma", mgt)
	check("heft", spmap.MapHEFT(g, p))
	check("peft", spmap.MapPEFT(g, p))
	mga, _ := spmap.MapGenetic(g, p, spmap.GAOptions{Generations: 10, Seed: 1})
	check("nsga2", mga)
}

func TestFacadeDecompose(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	g := spmap.RandomAlmostSeriesParallel(rng, 40, 20)
	f, err := spmap.Decompose(g, spmap.CutSmallest, 1)
	if err != nil {
		t.Fatal(err)
	}
	if f.Cuts == 0 {
		t.Fatal("almost-SP graph with 20 extra edges should require cuts")
	}
	sets, _, err := spmap.SeriesParallelSubgraphs(g, spmap.CutSmallest, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(sets) < g.NumTasks() {
		t.Fatal("subgraph set must at least contain the singletons")
	}
}

// TestFacadeSnapshotAndFleet exercises the snapshot/resume and fleet
// exports: a replay split at an event boundary via Snapshot/Restore
// must reproduce the uninterrupted trace, and RunFleet must resume an
// interrupted stream from its checkpoint to the same trace.
func TestFacadeSnapshotAndFleet(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	g := spmap.RandomSeriesParallel(rng, 10)
	p := spmap.ReferencePlatform()
	sc := spmap.NewScenario(rng, spmap.ScenarioOptions{
		Events: 2, Devices: p.NumDevices(), DefaultDevice: p.Default,
	})
	opt := spmap.OnlineOptions{Schedules: 4, Seed: 7, Workers: 1, RepairBudget: 40}

	_, ref, err := spmap.Replay(g, p, sc, opt)
	if err != nil {
		t.Fatal(err)
	}

	inst, err := spmap.NewOnlineInstance(g, p, opt)
	if err != nil {
		t.Fatal(err)
	}
	if err := inst.Step(sc.Events[0]); err != nil {
		t.Fatal(err)
	}
	snap, err := spmap.DecodeOnlineSnapshot(inst.Snapshot().Encode())
	if err != nil {
		t.Fatal(err)
	}
	resumed, err := spmap.RestoreInstance(snap, spmap.OnlineOptions{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := resumed.Step(sc.Events[1]); err != nil {
		t.Fatal(err)
	}
	if resumed.Stats().Trace() != ref.Trace() {
		t.Fatal("snapshot/restore replay diverged from the uninterrupted trace")
	}

	store := spmap.NewFleetMemStore()
	stream := spmap.FleetStream{ID: "s0", Graph: g, Platform: p, Scenario: sc, Options: opt}
	_, err = spmap.RunFleet([]spmap.FleetStream{stream}, spmap.FleetOptions{
		Shards: 1, Store: store, CheckpointEvery: 1,
		Interrupt: func(id string, events int) bool { return events >= 1 },
	})
	if err != nil {
		t.Fatal(err)
	}
	results, err := spmap.RunFleet([]spmap.FleetStream{stream}, spmap.FleetOptions{
		Shards: 1, Store: store,
	})
	if err != nil {
		t.Fatal(err)
	}
	r := results[0]
	if r.Err != nil {
		t.Fatal(r.Err)
	}
	if r.ResumedFrom != 1 || r.Events != 1 {
		t.Fatalf("resume cursor: resumed from %d, applied %d; want 1, 1", r.ResumedFrom, r.Events)
	}
	if r.Stats.Trace() != ref.Trace() {
		t.Fatal("fleet-resumed replay diverged from the uninterrupted trace")
	}
}

func TestFacadeWorkflows(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	g := spmap.GenerateWorkflow(spmap.Epigenomics, 2, rng)
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if g.NumTasks() < 20 {
		t.Fatalf("workflow too small: %d", g.NumTasks())
	}
}
