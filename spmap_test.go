package spmap_test

import (
	"math/rand"
	"testing"

	"spmap"
)

// TestFacadeEndToEnd exercises the public API the way the README
// quickstart does.
func TestFacadeEndToEnd(t *testing.T) {
	g := spmap.NewDAG()
	a := g.AddTask(spmap.Task{Name: "a", Complexity: 4, Parallelizability: 1, Streamability: 8, Area: 4, SourceBytes: 100e6})
	b := g.AddTask(spmap.Task{Name: "b", Complexity: 9, Parallelizability: 0.8, Streamability: 12, Area: 9})
	c := g.AddTask(spmap.Task{Name: "c", Complexity: 5, Parallelizability: 0.2, Streamability: 5, Area: 5})
	g.AddEdge(a, b, 100e6)
	g.AddEdge(b, c, 100e6)
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if !spmap.IsSeriesParallel(g) {
		t.Fatal("a chain is series-parallel")
	}
	p := spmap.ReferencePlatform()
	ev := spmap.NewEvaluator(g, p).WithSchedules(50, 1)
	m, stats, err := spmap.MapSeriesParallel(g, p, spmap.FirstFit)
	if err != nil {
		t.Fatal(err)
	}
	if len(m) != g.NumTasks() {
		t.Fatal("mapping length mismatch")
	}
	if stats.Makespan <= 0 {
		t.Fatal("stats must report the makespan")
	}
	if imp := spmap.Improvement(ev, m); imp < 0 || imp > 1 {
		t.Fatalf("improvement out of range: %v", imp)
	}
}

func TestFacadeAlgorithms(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	g := spmap.RandomSeriesParallel(rng, 20)
	p := spmap.ReferencePlatform()
	ev := spmap.NewEvaluator(g, p).WithSchedules(20, 1)
	base := ev.Makespan(spmap.BaselineMapping(g, p))

	check := func(name string, m spmap.Mapping) {
		t.Helper()
		if err := m.Validate(g, p); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if ms := ev.Makespan(m); ms <= 0 || ms > base*10 {
			t.Fatalf("%s: absurd makespan %v (baseline %v)", name, ms, base)
		}
	}
	msn, _, err := spmap.MapSingleNode(g, p, spmap.Basic)
	if err != nil {
		t.Fatal(err)
	}
	check("single-node", msn)
	mgt, _, err := spmap.MapGammaThreshold(g, p, 2)
	if err != nil {
		t.Fatal(err)
	}
	check("gamma", mgt)
	check("heft", spmap.MapHEFT(g, p))
	check("peft", spmap.MapPEFT(g, p))
	mga, _ := spmap.MapGenetic(g, p, spmap.GAOptions{Generations: 10, Seed: 1})
	check("nsga2", mga)
}

func TestFacadeDecompose(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	g := spmap.RandomAlmostSeriesParallel(rng, 40, 20)
	f, err := spmap.Decompose(g, spmap.CutSmallest, 1)
	if err != nil {
		t.Fatal(err)
	}
	if f.Cuts == 0 {
		t.Fatal("almost-SP graph with 20 extra edges should require cuts")
	}
	sets, _, err := spmap.SeriesParallelSubgraphs(g, spmap.CutSmallest, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(sets) < g.NumTasks() {
		t.Fatal("subgraph set must at least contain the singletons")
	}
}

func TestFacadeWorkflows(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	g := spmap.GenerateWorkflow(spmap.Epigenomics, 2, rng)
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if g.NumTasks() < 20 {
		t.Fatalf("workflow too small: %d", g.NumTasks())
	}
}
