// Command fpga-streaming demonstrates the dataflow-streaming aspect of
// the cost model and why series-parallel subgraph moves beat single-node
// moves on streaming hardware: a long chain of streamable tasks is mapped
// first task-by-task (which never pays off, because each lone FPGA task
// adds two transfers), then as one subgraph (which amortizes the
// transfers and pipelines the chain).
package main

import (
	"fmt"
	"log"

	"spmap"
)

func main() {
	// A 6-stage streaming pipeline (e.g. packet processing).
	const stages = 6
	g := spmap.NewDAG()
	var prev spmap.NodeID = -1
	for i := 0; i < stages; i++ {
		t := spmap.Task{
			Name:          fmt.Sprintf("stage%d", i),
			Complexity:    8,
			Streamability: 12, // deep pipelining on the FPGA
			Area:          8,
			// Mediocre CPU/GPU parallelism: this chain wants an FPGA.
			Parallelizability: 0.5,
		}
		if i == 0 {
			t.SourceBytes = 100e6
		}
		v := g.AddTask(t)
		if prev >= 0 {
			g.AddEdge(prev, v, 100e6)
		}
		prev = v
	}
	if err := g.Validate(); err != nil {
		log.Fatal(err)
	}
	p := spmap.ReferencePlatform()
	ev := spmap.NewEvaluator(g, p).WithSchedules(100, 1)
	fpga := 2 // device index of the FPGA in the reference platform

	base := spmap.BaselineMapping(g, p)
	fmt.Printf("pure-CPU makespan:            %8.2f ms\n", 1e3*ev.Makespan(base))

	// Move a single middle stage to the FPGA: the two extra transfers
	// dominate and the makespan gets worse.
	single := base.Clone()
	single[stages/2] = fpga
	fmt.Printf("one stage on FPGA:            %8.2f ms  (transfers dominate)\n",
		1e3*ev.Makespan(single))

	// Move the whole chain: transfers amortize, stages pipeline.
	whole := base.Clone()
	for i := 0; i < stages; i++ {
		whole[i] = fpga
	}
	fmt.Printf("whole chain on FPGA:          %8.2f ms  (streamed pipeline)\n",
		1e3*ev.Makespan(whole))

	// Single-node decomposition mapping cannot discover the chain move
	// (each individual step is a deterioration); the series-parallel
	// subgraph set contains the chain as one operation.
	msn, _, err := spmap.MapSingleNode(g, p, spmap.Basic)
	if err != nil {
		log.Fatal(err)
	}
	msp, _, err := spmap.MapSeriesParallel(g, p, spmap.Basic)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nSingleNode mapping:           %8.2f ms  improvement %5.1f %%\n",
		1e3*ev.Makespan(msn), 100*spmap.Improvement(ev, msn))
	fmt.Printf("SeriesParallel mapping:       %8.2f ms  improvement %5.1f %%\n",
		1e3*ev.Makespan(msp), 100*spmap.Improvement(ev, msp))

	fmt.Println("\nSeriesParallel device assignment:")
	for v := spmap.NodeID(0); int(v) < g.NumTasks(); v++ {
		fmt.Printf("  %-8s -> %s\n", g.Task(v).Name, p.Devices[msp[v]].Name)
	}
}
