// Command montage maps a synthetic Montage-like astronomy workflow (one
// of the paper's real-world benchmark families, §IV-D) and compares every
// mapping algorithm on it. Montage is dominated by a heavy serial tail
// (mImgtbl -> mAdd -> mShrink -> mJPEG), so mapping a handful of tail
// tasks correctly captures most of the achievable improvement — the
// behaviour the paper reports for this family.
package main

import (
	"fmt"
	"log"
	"math/rand"
	"time"

	"spmap"
)

func main() {
	rng := rand.New(rand.NewSource(42))
	g := spmap.GenerateWorkflow(spmap.Montage, 3, rng)
	if err := g.Validate(); err != nil {
		log.Fatal(err)
	}
	p := spmap.ReferencePlatform()
	ev := spmap.NewEvaluator(g, p).WithSchedules(100, 1)

	fmt.Printf("montage-like workflow: %d tasks, %d edges\n", g.NumTasks(), g.NumEdges())
	fmt.Printf("series-parallel: %v\n", spmap.IsSeriesParallel(g))
	forest, err := spmap.Decompose(g, spmap.CutSmallest, 1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("decomposition forest: %d trees, %d cuts\n\n", len(forest.Trees), forest.Cuts)

	base := ev.Makespan(spmap.BaselineMapping(g, p))
	fmt.Printf("%-14s %12s %12s %10s\n", "algorithm", "makespan(ms)", "improvement", "time")
	report := func(name string, m spmap.Mapping, el time.Duration) {
		fmt.Printf("%-14s %12.2f %11.1f%% %10s\n",
			name, 1e3*ev.Makespan(m), 100*spmap.Improvement(ev, m), el.Round(time.Millisecond))
	}
	fmt.Printf("%-14s %12.2f %12s %10s\n", "CPU baseline", 1e3*base, "-", "-")

	t0 := time.Now()
	mh := spmap.MapHEFT(g, p)
	report("HEFT", mh, time.Since(t0))

	t0 = time.Now()
	mp := spmap.MapPEFT(g, p)
	report("PEFT", mp, time.Since(t0))

	t0 = time.Now()
	msn, _, err := spmap.MapSingleNode(g, p, spmap.FirstFit)
	if err != nil {
		log.Fatal(err)
	}
	report("SNFirstFit", msn, time.Since(t0))

	t0 = time.Now()
	msp, _, err := spmap.MapSeriesParallel(g, p, spmap.FirstFit)
	if err != nil {
		log.Fatal(err)
	}
	report("SPFirstFit", msp, time.Since(t0))

	t0 = time.Now()
	mga, _ := spmap.MapGenetic(g, p, spmap.GAOptions{Generations: 100, Seed: 7})
	report("NSGAII(100)", mga, time.Since(t0))

	// Where did the heavy tail go?
	fmt.Println("\ntail mapping under SPFirstFit:")
	for v := spmap.NodeID(0); int(v) < g.NumTasks(); v++ {
		switch g.Task(v).Name {
		case "mImgtbl", "mAdd", "mShrink", "mJPEG":
			fmt.Printf("  %-8s -> %s\n", g.Task(v).Name, p.Devices[msp[v]].Name)
		}
	}
}
