// Command custom-platform shows how to describe your own heterogeneous
// platform (here: an embedded board with a small CPU, an AI accelerator
// and two FPGA regions of different size) and how the mapping outcome
// reacts to platform changes — the model-based design-space exploration
// the paper advocates (§II-B).
package main

import (
	"fmt"
	"log"
	"math/rand"

	"spmap"
)

func buildPlatform(fpgaArea float64) *spmap.Platform {
	return &spmap.Platform{
		Default: 0,
		Devices: []spmap.Device{
			{
				Name: "cortex-a53", Kind: spmap.CPU,
				Lanes: 4, PeakOps: 16e9, Slots: 2,
				Bandwidth: 8e9, Latency: 2e-6,
			},
			{
				Name: "npu", Kind: spmap.Accel,
				Lanes: 256, PeakOps: 400e9, Slots: 1,
				Bandwidth: 1.2e9, Latency: 15e-6,
			},
			{
				Name: "fpga-region", Kind: spmap.FPGA,
				Lanes: 1, PeakOps: 3e9,
				Streaming: true, Spatial: true, Area: fpgaArea,
				Bandwidth: 0.8e9, Latency: 25e-6,
			},
		},
	}
}

func main() {
	rng := rand.New(rand.NewSource(11))
	g := spmap.RandomSeriesParallel(rng, 60)
	if err := g.Validate(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("random series-parallel application: %d tasks, %d edges\n\n", g.NumTasks(), g.NumEdges())

	fmt.Printf("%-10s %14s %14s %14s\n", "FPGA area", "improvement", "FPGA tasks", "NPU tasks")
	for _, area := range []float64{5, 40, 80, 160, 320} {
		p := buildPlatform(area)
		if err := p.Validate(); err != nil {
			log.Fatal(err)
		}
		ev := spmap.NewEvaluator(g, p).WithSchedules(50, 1)
		m, _, err := spmap.MapSeriesParallel(g, p, spmap.FirstFit)
		if err != nil {
			log.Fatal(err)
		}
		nFPGA, nNPU := 0, 0
		for _, d := range m {
			switch d {
			case 2:
				nFPGA++
			case 1:
				nNPU++
			}
		}
		fmt.Printf("%-10.0f %13.1f%% %14d %14d\n",
			area, 100*spmap.Improvement(ev, m), nFPGA, nNPU)
	}

	fmt.Println("\nlarger reconfigurable regions let the mapper stream longer chains;")
	fmt.Println("with a tiny region almost everything competes for the NPU instead.")
}
