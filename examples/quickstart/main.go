// Command quickstart shows the minimal end-to-end spmap workflow: build a
// small task graph by hand, map it onto the reference CPU+GPU+FPGA
// platform with series-parallel decomposition mapping, and compare the
// result against the pure-CPU baseline and HEFT.
package main

import (
	"fmt"
	"log"

	"spmap"
)

func main() {
	// A small image-processing pipeline: load -> {denoise, edges} ->
	// fuse -> encode. The denoise/edges pair is a parallel block; the
	// whole graph is series-parallel.
	g := spmap.NewDAG()
	load := g.AddTask(spmap.Task{
		Name: "load", Complexity: 2, Parallelizability: 0.6,
		Streamability: 10, Area: 2, SourceBytes: 100e6,
	})
	denoise := g.AddTask(spmap.Task{
		Name: "denoise", Complexity: 12, Parallelizability: 1,
		Streamability: 14, Area: 12,
	})
	edges := g.AddTask(spmap.Task{
		Name: "edges", Complexity: 8, Parallelizability: 1,
		Streamability: 9, Area: 8,
	})
	fuse := g.AddTask(spmap.Task{
		Name: "fuse", Complexity: 6, Parallelizability: 0.9,
		Streamability: 11, Area: 6,
	})
	encode := g.AddTask(spmap.Task{
		Name: "encode", Complexity: 10, Parallelizability: 0.4,
		Streamability: 6, Area: 10,
	})
	g.AddEdge(load, denoise, 100e6)
	g.AddEdge(load, edges, 100e6)
	g.AddEdge(denoise, fuse, 100e6)
	g.AddEdge(edges, fuse, 100e6)
	g.AddEdge(fuse, encode, 100e6)
	if err := g.Validate(); err != nil {
		log.Fatal(err)
	}

	p := spmap.ReferencePlatform()
	fmt.Printf("graph: %d tasks, %d edges; series-parallel: %v\n",
		g.NumTasks(), g.NumEdges(), spmap.IsSeriesParallel(g))

	// The cost function: minimum makespan over a breadth-first and 100
	// random schedules, exactly as in the paper's evaluation.
	ev := spmap.NewEvaluator(g, p).WithSchedules(100, 1)
	base := ev.Makespan(spmap.BaselineMapping(g, p))
	fmt.Printf("pure-CPU baseline makespan: %.2f ms\n", 1e3*base)

	m, stats, err := spmap.MapSeriesParallel(g, p, spmap.FirstFit)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nseries-parallel decomposition mapping (%d subgraphs, %d iterations, %d evaluations):\n",
		stats.Subgraphs, stats.Iterations, stats.Evaluations)
	for v := spmap.NodeID(0); int(v) < g.NumTasks(); v++ {
		fmt.Printf("  %-8s -> %s\n", g.Task(v).Name, p.Devices[m[v]].Name)
	}
	fmt.Printf("makespan: %.2f ms, improvement over CPU: %.1f %%\n",
		1e3*ev.Makespan(m), 100*spmap.Improvement(ev, m))

	hm := spmap.MapHEFT(g, p)
	fmt.Printf("\nHEFT improvement for comparison: %.1f %%\n", 100*spmap.Improvement(ev, hm))
}
