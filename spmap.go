// Package spmap is a Go library for static task mapping on heterogeneous
// platforms (CPU + GPU + FPGA), reproducing "Static task mapping for
// heterogeneous systems based on series-parallel decompositions" (Wilhelm
// & Pionteck, IPPS 2025, arXiv:2502.19745).
//
// The package is a facade over the internal implementation packages. A
// typical session builds a task graph, picks a platform, and runs one of
// the mapping algorithms:
//
//	g := spmap.NewDAG()
//	a := g.AddTask(spmap.Task{Name: "load", Complexity: 4, Parallelizability: 1, Streamability: 8, Area: 4, SourceBytes: 100e6})
//	b := g.AddTask(spmap.Task{Name: "filter", Complexity: 9, Parallelizability: 0.8, Streamability: 12, Area: 9})
//	g.AddEdge(a, b, 100e6)
//
//	p := spmap.ReferencePlatform()
//	m, stats, err := spmap.MapSeriesParallel(g, p, spmap.FirstFit)
//	...
//	ev := spmap.NewEvaluator(g, p).WithSchedules(100, 1)
//	fmt.Println("makespan:", ev.Makespan(m), "improvement:", spmap.Improvement(ev, m))
//
// The mapping algorithms:
//
//   - MapSingleNode / MapSeriesParallel — the paper's decomposition-based
//     mappers (§III), in Basic, GammaThreshold and FirstFit variants.
//   - MapHEFT / MapPEFT — the list-scheduling baselines.
//   - MapGenetic — the single-objective NSGA-II baseline.
//   - MapLocalSearch — metaheuristic extension beyond the paper:
//     simulated annealing or a batched large-neighborhood hill-climber
//     over device assignments, driven by the evaluation engine's batch
//     prefix-resume path.
//   - Refine — local-search polishing of any other mapper's output
//     (decomposition, HEFT/PEFT, GA); never returns a worse mapping.
//   - MapPareto — multi-objective (makespan x energy) mapping beyond
//     the paper (§II-A sketches the transfer): a weighted local-search
//     sweep or a true two-objective NSGA-II over the engine's
//     (makespan, energy) batch path, returning a bounded ε-dominance
//     Pareto front of time/energy trade-offs.
//   - MapPortfolio — algorithm racing beyond the paper: the whole
//     mapper portfolio (decomposition+refine, HEFT/PEFT+refine,
//     annealing, hill climbing, GA) runs concurrently under one shared
//     evaluation budget with a shared memoizing evaluation cache,
//     cross-pollination of the incumbent best mapping, and budget
//     stealing from stalled members — deterministic for a fixed Seed
//     regardless of Workers. Every race reports a certified makespan
//     lower bound and optimality gap (CertifyLowerBound, OptimalityGap)
//     and can terminate early once the gap reaches
//     PortfolioOptions.GapTarget.
//   - MapMILP — the ZhouLiu / WGDP-Device / WGDP-Time integer programs
//     solved by the built-in branch-and-bound solver.
//
// Series-parallel machinery (decomposition forests for arbitrary DAGs,
// paper Alg. 1) is exposed via Decompose and IsSeriesParallel.
//
// # Online replay
//
// Beyond the paper's static setting, Replay runs a deterministic
// scenario — device failures, device degradation, series-parallel
// subgraph arrivals and departures (NewScenario) — against a live
// instance: after each event the evaluation kernel is rebuilt, the
// incumbent mapping is migrated (evictions, SPFF placement of arrivals)
// and repaired with a budgeted warm-start pass that is never worse than
// re-mapping from scratch at the same budget. The replay trace is
// byte-identical for any Workers value, with the evaluation cache on or
// off (OnlineStats.Trace).
//
// Live replay state checkpoints and resumes: NewOnlineInstance/Step
// drive a replay one event at a time, OnlineSnapshot captures it as a
// versioned byte-stable blob, RestoreInstance rebuilds it (kernels and
// caches recompiled fresh) and the resumed trace is byte-identical to
// an uninterrupted run. RunFleet scales this to many streams sharded
// across workers with periodic checkpoints into a pluggable FleetStore
// and verifiable crash-resume.
//
// # Evaluation engine
//
// All makespan evaluation runs on a compiled evaluation engine
// (internal/eval): the schedule orders and the graph's in-edges are
// flattened into contiguous CSR-style arrays once per evaluator, each
// schedule simulation aborts as soon as its partial makespan can no
// longer become the schedule-set minimum, and batches of candidate
// mappings are evaluated across a worker pool. Results are bit-identical
// to the straightforward simulation, so the greedy mappers' deterministic
// termination guarantee (§III-A) is unaffected.
//
// Concurrency contract: an Evaluator is single-goroutine (it keeps
// scratch buffers; use Clone per goroutine), while an Engine — obtained
// via NewEngine or Evaluator.Engine — is immutable and safe for
// concurrent use from any number of goroutines. Engine.EvaluateBatch
// returns index-aligned results, so reductions over a batch are
// deterministic regardless of scheduling; the decomposition mappers,
// the GA and the local-search mappers evaluate their candidate sets
// this way by default. In particular, every stochastic mapper
// (MapGenetic, MapLocalSearch, Refine) is reproducible: a fixed Seed
// yields an identical mapping and stats for any Workers value.
//
// Single-objective local search additionally evaluates through
// Engine.Incremental (package eval): a long-lived session that records
// the incumbent's simulation once and then serves each candidate move
// in O(changed window) — capacity lower bounds, resumed replays with
// fast-forward reconvergence, and lazy in-place repair on accepted
// moves — with results bit-identical to Engine.Makespan on the
// materialized mapping and zero steady-state allocations. This is an
// engine-internal fast path: it changes no spmap-level API or result,
// only the wall-clock cost of MapLocalSearch, Refine and the repair
// passes built on them.
package spmap

import (
	"io"
	"math/rand"
	"time"

	"spmap/internal/bounds"
	"spmap/internal/eval"
	"spmap/internal/fleet"
	"spmap/internal/gen"
	"spmap/internal/graph"
	"spmap/internal/mappers/decomp"
	"spmap/internal/mappers/ga"
	"spmap/internal/mappers/heft"
	"spmap/internal/mappers/localsearch"
	"spmap/internal/mapping"
	"spmap/internal/milp"
	"spmap/internal/model"
	"spmap/internal/online"
	"spmap/internal/pareto"
	"spmap/internal/platform"
	"spmap/internal/portfolio"
	"spmap/internal/service"
	"spmap/internal/sp"
	"spmap/internal/wf"
)

// Core graph types.
type (
	// DAG is a directed acyclic task graph.
	DAG = graph.DAG
	// Task is a node of the task graph with its cost-model attributes.
	Task = graph.Task
	// Edge is a data dependency carrying a byte volume.
	Edge = graph.Edge
	// NodeID identifies a task within a DAG.
	NodeID = graph.NodeID
)

// Platform types.
type (
	// Platform is a set of heterogeneous devices.
	Platform = platform.Platform
	// Device is one processing unit.
	Device = platform.Device
	// DeviceKind classifies devices (CPU, GPU, FPGA, Accel).
	DeviceKind = platform.Kind
)

// Device kinds.
const (
	CPU   = platform.CPU
	GPU   = platform.GPU
	FPGA  = platform.FPGA
	Accel = platform.Accel
)

// Mapping assigns each task to a device index.
type Mapping = mapping.Mapping

// Evaluator is the model-based cost function (makespan of a mapping).
type Evaluator = model.Evaluator

// Engine is the compiled, concurrency-safe evaluation engine behind the
// cost function: single evaluations with optional cutoff-bounded early
// exit plus batch evaluation over an internal worker pool.
type Engine = eval.Engine

// EngineOp is one request of an Engine.EvaluateBatch call: the Base
// mapping with the tasks in Patch remapped to Device (nil Patch
// evaluates Base as-is).
type EngineOp = eval.Op

// Series-parallel machinery.
type (
	// SPTree is a series-parallel decomposition tree.
	SPTree = sp.Tree
	// SPForest is a forest of decomposition trees for a general DAG.
	SPForest = sp.Forest
	// Subgraph is a node set considered for joint remapping.
	Subgraph = sp.Subgraph
	// CutPolicy selects the deadlock cut heuristic of the decomposition.
	CutPolicy = sp.CutPolicy
)

// Cut policies for the decomposition of non-series-parallel DAGs.
const (
	CutRandom   = sp.CutRandom
	CutSmallest = sp.CutSmallest
	CutLargest  = sp.CutLargest
)

// Heuristic selects the decomposition-mapper iteration scheme (§III-D).
type Heuristic = decomp.Heuristic

// Iteration heuristics.
const (
	// Basic fully re-evaluates all mapping operations per iteration.
	Basic = decomp.Basic
	// GammaThreshold prunes re-evaluations with a gamma look-ahead bound.
	GammaThreshold = decomp.GammaThreshold
	// FirstFit applies the first re-validated improvement (gamma = 1).
	FirstFit = decomp.FirstFit
)

// MapperStats reports decomposition-mapper effort.
type MapperStats = decomp.Stats

// MILPKind selects a reference integer program.
type MILPKind = milp.Formulation

// MILP formulations.
const (
	MILPZhouLiu    = milp.ZhouLiu
	MILPWGDPDevice = milp.WGDPDevice
	MILPWGDPTime   = milp.WGDPTime
)

// NewDAG returns an empty task graph.
func NewDAG() *DAG { return graph.New(0, 0) }

// ReferencePlatform returns the paper's evaluation platform (§IV-A): one
// CPU, one GPU and one streaming FPGA.
func ReferencePlatform() *Platform { return platform.Reference() }

// NewEvaluator builds the model-based cost function for (g, p). Chain
// WithSchedules(n, seed) to evaluate mappings as the minimum over the BFS
// and n random schedules (the paper uses n = 100).
func NewEvaluator(g *DAG, p *Platform) *Evaluator { return model.NewEvaluator(g, p) }

// NewEngine compiles a concurrency-safe evaluation engine for (g, p)
// whose schedule set is the BFS order plus nRandom random topological
// orders drawn from seed — the batch/cutoff counterpart of
// NewEvaluator(g, p).WithSchedules(nRandom, seed), with bit-identical
// makespans.
func NewEngine(g *DAG, p *Platform, nRandom int, seed int64) *Engine {
	return eval.NewEngineSchedules(g, p, nRandom, seed, eval.Options{})
}

// BaselineMapping returns the pure-CPU (default device) mapping.
func BaselineMapping(g *DAG, p *Platform) Mapping { return mapping.Baseline(g, p) }

// Improvement returns the positive relative makespan improvement of m
// over the pure-CPU baseline under ev (the paper's quality metric).
func Improvement(ev *Evaluator, m Mapping) float64 {
	base := ev.Makespan(mapping.Baseline(ev.G, ev.P))
	ms := ev.Makespan(m)
	if base <= 0 || ms >= base {
		return 0
	}
	return (base - ms) / base
}

// MapSingleNode runs single-node decomposition mapping (§III-B).
func MapSingleNode(g *DAG, p *Platform, h Heuristic) (Mapping, MapperStats, error) {
	return decomp.Map(g, p, decomp.Options{Strategy: decomp.SingleNode, Heuristic: h})
}

// MapSeriesParallel runs series-parallel decomposition mapping (§III-C).
func MapSeriesParallel(g *DAG, p *Platform, h Heuristic) (Mapping, MapperStats, error) {
	return decomp.Map(g, p, decomp.Options{Strategy: decomp.SeriesParallel, Heuristic: h})
}

// MapGammaThreshold runs series-parallel decomposition mapping with an
// explicit gamma look-ahead threshold (§III-D); gamma = 1 is FirstFit.
func MapGammaThreshold(g *DAG, p *Platform, gamma float64) (Mapping, MapperStats, error) {
	return decomp.Map(g, p, decomp.Options{
		Strategy: decomp.SeriesParallel, Heuristic: decomp.GammaThreshold, Gamma: gamma,
	})
}

// MapHEFT runs the Heterogeneous Earliest Finish Time baseline.
func MapHEFT(g *DAG, p *Platform) Mapping { return heft.Map(g, p, heft.HEFT) }

// MapPEFT runs the Predict Earliest Finish Time baseline.
func MapPEFT(g *DAG, p *Platform) Mapping { return heft.Map(g, p, heft.PEFT) }

// GAOptions configure MapGenetic.
type GAOptions = ga.Options

// GAStats reports genetic-algorithm effort and convergence.
type GAStats = ga.Stats

// MapGenetic runs the single-objective NSGA-II baseline.
func MapGenetic(g *DAG, p *Platform, opt GAOptions) (Mapping, GAStats) {
	return ga.Map(g, p, opt)
}

// LocalSearchOptions configure MapLocalSearch and Refine. Seed and
// Workers are explicit: for a fixed Seed the result (mapping, makespan
// and stats) is identical across runs and across any Workers value —
// random draws happen on the calling goroutine in a fixed order and
// batch results are index-aligned, so no reduction depends on goroutine
// scheduling.
type LocalSearchOptions = localsearch.Options

// LocalSearchStats reports local-search effort and outcome.
type LocalSearchStats = localsearch.Stats

// LocalSearchAlgorithm selects the search scheme of MapLocalSearch.
type LocalSearchAlgorithm = localsearch.Algorithm

// Local-search schemes. Both search over single-task moves, edge
// co-moves and the paper's §III-C series-parallel subgraph co-moves
// (the co-moves cross the streaming-chain plateaus where no single
// move improves).
const (
	// Anneal is batched simulated annealing with Metropolis acceptance.
	Anneal = localsearch.Anneal
	// HillClimb is batched steepest-descent over the full neighborhood
	// with iterated-local-search kicks.
	HillClimb = localsearch.HillClimb
)

// MapLocalSearch runs local search (simulated annealing or the batched
// hill-climber) from the pure-CPU baseline. The result is never worse
// than the baseline mapping.
func MapLocalSearch(g *DAG, p *Platform, opt LocalSearchOptions) (Mapping, LocalSearchStats, error) {
	return localsearch.Map(g, p, opt)
}

// Refine polishes an existing mapping — any mapper's output — with
// local search under ev's cost function. The result is never worse
// than the (area-repaired) input mapping.
func Refine(ev *Evaluator, m Mapping, opt LocalSearchOptions) (Mapping, LocalSearchStats, error) {
	return localsearch.Refine(ev, m, opt)
}

// ParetoPoint is one (makespan, energy) outcome of a mapping on the
// multi-objective front.
type ParetoPoint = pareto.Point

// ParetoFront is a set of mutually non-dominated (makespan, energy)
// points sorted by ascending makespan.
type ParetoFront = pareto.Front

// ParetoArchive is the bounded ε-dominance archive behind MapPareto,
// exported for callers that harvest fronts from their own search loops.
type ParetoArchive = pareto.Archive

// NewParetoArchive returns an empty ε-dominance archive (eps = 0 keeps
// the exact front).
func NewParetoArchive(eps float64) *ParetoArchive { return pareto.NewArchive(eps) }

// ParetoAlgorithm selects the multi-objective driver of MapPareto.
type ParetoAlgorithm int

// Multi-objective drivers.
const (
	// ParetoSweep runs one weighted-scalarization local search per
	// sweep weight over the engine's multi-objective batch path and
	// archives every incumbent. The pure-time weight runs the plain
	// single-objective search, so the front always contains the
	// makespan optimum the same budget would have found alone.
	ParetoSweep ParetoAlgorithm = iota
	// ParetoNSGA2 runs true two-objective NSGA-II (non-dominated
	// sorting, crowding-distance selection) and archives every
	// evaluated individual.
	ParetoNSGA2
)

// String implements fmt.Stringer.
func (a ParetoAlgorithm) String() string {
	if a == ParetoNSGA2 {
		return "NSGA2"
	}
	return "Sweep"
}

// ParetoOptions configure MapPareto; zero values select the defaults.
type ParetoOptions struct {
	// Algorithm selects the driver (default ParetoSweep).
	Algorithm ParetoAlgorithm
	// Eps is the archive's ε-dominance grid resolution: the front keeps
	// at most one point per ε-box of objective space, bounding its size
	// (0 keeps the exact non-dominated front).
	Eps float64
	// Seed drives the deterministic RNG. Equal seeds give identical
	// fronts regardless of Workers.
	Seed int64
	// Workers bounds the evaluation engine's worker pool (0 selects
	// GOMAXPROCS); the front is identical for any value.
	Workers int
	// Budget caps total engine evaluations (default 50100, the paper
	// GA's budget): the sweep splits it across its weights, NSGA-II
	// derives population x (generations+1) from it.
	Budget int
	// Weights are the sweep's time weights in [0, 1] (sweep only;
	// default pareto.DefaultWeights).
	Weights []float64
	// Init refines an existing mapping instead of the pure-CPU baseline
	// (sweep only).
	Init Mapping
}

// ParetoStats report MapPareto effort and outcome.
type ParetoStats struct {
	Algorithm   ParetoAlgorithm
	Evaluations int
	// FrontSize is the returned front's size; ArchiveSeen counts the
	// feasible points offered to the ε-archive.
	FrontSize   int
	ArchiveSeen int
	// BestMakespan and BestEnergy are the front's per-objective minima.
	BestMakespan float64
	BestEnergy   float64
}

// MapPareto maps (g, p) under the two-objective (makespan, energy)
// model and returns the ε-dominance Pareto front. Both objectives are
// evaluated on the engine's multi-objective batch path (energy at
// near-zero marginal cost next to the makespan simulation). The front
// is deterministic for a fixed Seed regardless of Workers.
func MapPareto(g *DAG, p *Platform, opt ParetoOptions) (ParetoFront, ParetoStats, error) {
	return MapParetoWithEvaluator(model.NewEvaluator(g, p), opt)
}

// MapParetoWithEvaluator is MapPareto with a caller-supplied evaluator
// (to control the schedule set and share the compiled engine).
func MapParetoWithEvaluator(ev *Evaluator, opt ParetoOptions) (ParetoFront, ParetoStats, error) {
	budget := opt.Budget
	if budget <= 0 {
		budget = 50100
	}
	stats := ParetoStats{Algorithm: opt.Algorithm}
	switch opt.Algorithm {
	case ParetoNSGA2:
		// Derive (population, generations) from the evaluation budget:
		// the paper's population of 100 once the budget carries it, a
		// smaller population (still >= 4) below.
		pop := ga.DefaultPopulation
		if budget < 2*pop {
			if pop = budget / 8; pop < 4 {
				pop = 4
			}
		}
		gens := budget/pop - 1
		if gens < 1 {
			gens = 1
		}
		front, st := ga.MapParetoWithEvaluator(ev, ga.ParetoOptions{
			Population: pop, Generations: gens,
			Seed: opt.Seed, Workers: opt.Workers, Eps: opt.Eps,
		})
		stats.Evaluations = st.Evaluations
		stats.FrontSize = st.FrontSize
		stats.ArchiveSeen = st.ArchiveSeen
		stats.BestMakespan, stats.BestEnergy = st.BestMakespan, st.BestEnergy
		return front, stats, nil
	default:
		weights := opt.Weights
		if len(weights) == 0 {
			weights = pareto.DefaultWeights
		}
		perWeight := budget / len(weights)
		if perWeight < 1 {
			perWeight = 1 // a zero budget would select the sweep's default
		}
		front, st, err := pareto.WeightedSweep(ev, pareto.SweepOptions{
			Weights: weights, Eps: opt.Eps, Budget: perWeight,
			Seed: opt.Seed, Workers: opt.Workers, Init: opt.Init,
		})
		if err != nil {
			return nil, stats, err
		}
		stats.Evaluations = st.Evaluations
		stats.FrontSize = st.FrontSize
		stats.ArchiveSeen = st.ArchiveSeen
		stats.BestMakespan, stats.BestEnergy = st.BestMakespan, st.BestEnergy
		return front, stats, nil
	}
}

// NoiseModel describes multiplicative stochastic perturbations of the
// cost model — per-(task, device) and common-mode per-device
// execution-time factors plus per-edge transfer-size factors — used by
// the robust objective. Sampling is deterministic: sample s of a fixed
// model is one fixed perturbed cost world.
type NoiseModel = eval.NoiseModel

// NoiseKind selects a NoiseModel's perturbation distribution.
type NoiseKind = eval.NoiseKind

// Perturbation distributions.
const (
	// NoiseLognormal draws multiplicative lognormal factors exp(σZ).
	NoiseLognormal = eval.NoiseLognormal
	// NoiseUniform draws uniform factors 1 + σU, U in [-1, 1) (σ < 1).
	NoiseUniform = eval.NoiseUniform
)

// Objective is one minimized batch objective of the evaluation engine's
// vector API (Engine.EvaluateBatchVec); see eval.BuildObjective for the
// registry of named objectives ("makespan", "energy", "robust",
// "robust-mean").
type Objective = eval.Objective

// DefaultRobustSamples is MapRobust's default Monte-Carlo sample count.
const DefaultRobustSamples = 32

// RobustOptions configure MapRobust; zero values select the defaults.
type RobustOptions struct {
	// Noise is the stochastic cost model the robust objective samples.
	// The zero model is valid but degenerate (no perturbation).
	Noise NoiseModel
	// Samples is the Monte-Carlo sample count per candidate (default
	// DefaultRobustSamples).
	Samples int
	// Tail is the reported tail quantile in (0, 1) (default 0.95).
	Tail float64
	// Eps is the archive's ε-dominance grid resolution (0 = exact front).
	Eps float64
	// Seed drives the deterministic RNG. Equal seeds give identical
	// fronts regardless of Workers.
	Seed int64
	// Workers bounds the evaluation engine's worker pool (0 selects
	// GOMAXPROCS); the front is identical for any value.
	Workers int
	// Budget caps candidate evaluations (default 4200); each candidate
	// additionally costs Samples perturbed simulations, so robust runs
	// default to a much smaller budget than the nominal mappers' 50100.
	Budget int
}

// RobustStats report MapRobust effort and outcome.
type RobustStats struct {
	// Evaluations counts evaluated candidates (each one nominal
	// simulation plus Samples perturbed ones); Samples echoes the
	// Monte-Carlo sample count.
	Evaluations int
	Samples     int
	// FrontSize is the returned front's size; ArchiveSeen counts the
	// feasible candidates offered to the ε-archive.
	FrontSize   int
	ArchiveSeen int
	// BestMakespan, BestEnergy and BestRobust are the front's
	// per-objective minima (nominal makespan, energy, tail makespan).
	BestMakespan float64
	BestEnergy   float64
	BestRobust   float64
}

// MapRobust maps (g, p) under the three-objective (makespan, energy,
// tail makespan) model: NSGA-II over the engine's objective-vector
// batch path, where the third objective is the Tail quantile of the
// candidate's makespan across Samples Monte-Carlo perturbed cost worlds
// drawn from Noise. It returns the ε-dominance front of time × energy ×
// robustness trade-offs; the min-robust point is the uncertainty-hedged
// mapping (compare experiments.RobustComparison). The front is
// deterministic for a fixed (Seed, Noise, Samples) regardless of
// Workers and cache configuration.
func MapRobust(g *DAG, p *Platform, opt RobustOptions) (ParetoFront, RobustStats, error) {
	return MapRobustWithEvaluator(model.NewEvaluator(g, p), opt)
}

// MapRobustWithEvaluator is MapRobust with a caller-supplied evaluator
// (to control the schedule set and share the compiled engine).
func MapRobustWithEvaluator(ev *Evaluator, opt RobustOptions) (ParetoFront, RobustStats, error) {
	samples := opt.Samples
	if samples == 0 {
		samples = DefaultRobustSamples
	}
	robust, err := eval.NewRobustObjective(opt.Noise, samples, opt.Tail, eval.RobustTail)
	if err != nil {
		return nil, RobustStats{}, err
	}
	budget := opt.Budget
	if budget <= 0 {
		budget = 4200
	}
	pop := ga.DefaultPopulation
	if budget < 2*pop {
		if pop = budget / 8; pop < 4 {
			pop = 4
		}
	}
	gens := budget/pop - 1
	if gens < 1 {
		gens = 1
	}
	front, st := ga.MapParetoWithEvaluator(ev, ga.ParetoOptions{
		Population: pop, Generations: gens,
		Seed: opt.Seed, Workers: opt.Workers, Eps: opt.Eps,
		Objectives: []Objective{
			eval.MakespanObjective(), eval.EnergyObjective(), robust,
		},
	})
	stats := RobustStats{
		Evaluations: st.Evaluations, Samples: samples,
		FrontSize: st.FrontSize, ArchiveSeen: st.ArchiveSeen,
		BestMakespan: st.BestMakespan, BestEnergy: st.BestEnergy,
	}
	if len(front) > 0 {
		stats.BestRobust = front.MinObjective(2).Objective(2)
	}
	return front, stats, nil
}

// PortfolioOptions configure MapPortfolio; zero values select the
// defaults (full portfolio, the paper GA's 50100-evaluation budget, the
// shared evaluation cache on). Setting GapTarget in (0, 1) arms
// gap-adaptive termination: the race stops as soon as the incumbent's
// certified optimality gap reaches the target.
type PortfolioOptions = portfolio.Options

// PortfolioStats report a portfolio race: per-member budgets,
// evaluations and outcomes, coordination rounds, reallocated budget,
// the certified makespan lower bound and optimality gap of the returned
// mapping (LowerBound, BoundName, Gap — certified on every run), the
// gap-adaptive early-stop outcome (GapStop, BudgetSaved), and the
// shared cache's telemetry. All fields except Cache are deterministic
// for a fixed Seed regardless of Workers (cache hit counts depend on
// wall-clock interleaving; Stats.Deterministic zeroes them for
// fingerprinting).
type PortfolioStats = portfolio.Stats

// PortfolioMember identifies one racing mapper of MapPortfolio.
type PortfolioMember = portfolio.MemberKind

// Portfolio members.
const (
	// PortfolioSPFFRefine is the series-parallel FirstFit decomposition
	// mapper polished by annealing refinement.
	PortfolioSPFFRefine = portfolio.SPFFRefine
	// PortfolioHEFTRefine / PortfolioPEFTRefine refine the list-
	// scheduling seed mappings.
	PortfolioHEFTRefine = portfolio.HEFTRefine
	PortfolioPEFTRefine = portfolio.PEFTRefine
	// PortfolioAnneal and PortfolioHillClimb are the local searches from
	// the pure-CPU baseline.
	PortfolioAnneal    = portfolio.Anneal
	PortfolioHillClimb = portfolio.HillClimb
	// PortfolioNSGA2 is the single-objective genetic algorithm.
	PortfolioNSGA2 = portfolio.NSGA2
)

// MapPortfolio races the mapper portfolio on (g, p) under a shared
// evaluation budget: every member searches concurrently on the same
// memoizing evaluation engine (a candidate proposed by two mappers is
// simulated once), the best mapping found so far is periodically
// published and injected into stalled members as a restart elite, and
// members that stop improving donate budget to the leader. The result
// is never worse than what the best-performing member would have found
// with its share, and deterministic for a fixed Options.Seed across any
// Options.Workers value (see internal/portfolio for the rendezvous
// design that keeps real concurrency out of the results).
//
// Every race also certifies its result: Stats carries a proven makespan
// lower bound for the instance and the returned mapping's optimality
// gap. With Options.GapTarget set the race is gap-adaptive — it
// terminates as soon as the certified gap reaches the target instead of
// exhausting the budget (Stats.GapStop, Stats.BudgetSaved).
func MapPortfolio(g *DAG, p *Platform, opt PortfolioOptions) (Mapping, PortfolioStats, error) {
	return portfolio.Map(g, p, opt)
}

// MapPortfolioWithEvaluator is MapPortfolio with a caller-supplied
// evaluator (to control the schedule set and share the compiled
// engine). The evaluator is not mutated.
func MapPortfolioWithEvaluator(ev *Evaluator, opt PortfolioOptions) (Mapping, PortfolioStats, error) {
	return portfolio.MapWithEvaluator(ev, opt)
}

// BoundCertificate is a proven makespan lower bound for an instance:
// the best value across the certifying methods, the name of the method
// that achieved it, and every method's individual bound.
type BoundCertificate = bounds.Certificate

// CertifyLowerBound computes a certified makespan lower bound for
// (g, p) from the combinatorial bound family (critical path over best
// execution times, device-class load, transfer-aware path DP): a value
// no feasible mapping can beat under the simulator semantics, usable as
// the denominator-side certificate for any mapper's result. Bounds are
// pure instance functions — deterministic, no search, no wall clock.
func CertifyLowerBound(g *DAG, p *Platform) BoundCertificate {
	return bounds.Certify(model.NewEvaluator(g, p))
}

// OptimalityGap returns the certified gap (makespan - bound)/makespan
// clamped to [0, 1]; 1 when nothing useful is certified (non-positive
// bound, or an infeasible/non-positive makespan).
func OptimalityGap(makespan, bound float64) float64 { return bounds.Gap(makespan, bound) }

// MILPResult is the outcome of a MILP mapping run.
type MILPResult = milp.Result

// MapMILP builds and solves one of the reference integer programs with
// the built-in branch-and-bound solver under the given time limit.
func MapMILP(g *DAG, p *Platform, kind MILPKind, timeLimit time.Duration) MILPResult {
	return milp.Map(g, p, kind, milp.MapOptions{TimeLimit: timeLimit})
}

// Decompose computes a forest of series-parallel decomposition trees for
// an arbitrary DAG (paper Alg. 1) under the given cut policy.
func Decompose(g *DAG, policy CutPolicy, seed int64) (*SPForest, error) {
	return sp.Decompose(g, sp.Options{Policy: policy, Seed: seed})
}

// IsSeriesParallel reports whether the DAG (after single source/sink
// normalization) is two-terminal series-parallel.
func IsSeriesParallel(g *DAG) bool { return sp.IsSeriesParallel(g) }

// SeriesParallelSubgraphs returns the §III-C subgraph set of a graph
// together with the decomposition forest it derives from.
func SeriesParallelSubgraphs(g *DAG, policy CutPolicy, seed int64) ([]Subgraph, *SPForest, error) {
	return sp.SeriesParallelSubgraphs(g, sp.Options{Policy: policy, Seed: seed})
}

// RandomSeriesParallel generates a random series-parallel task graph with
// n tasks and the paper's §IV-B attribute distributions.
func RandomSeriesParallel(rng *rand.Rand, n int) *DAG {
	return gen.SeriesParallel(rng, n, gen.DefaultAttr())
}

// RandomAlmostSeriesParallel generates a series-parallel graph with n
// tasks plus k random (mostly conflicting) extra edges (§IV-C).
func RandomAlmostSeriesParallel(rng *rand.Rand, n, k int) *DAG {
	return gen.AlmostSeriesParallel(rng, n, k, gen.DefaultAttr())
}

// Scenario is a deterministic event stream for online replay: device
// failures and degradations, series-parallel subgraph arrivals and
// departures, each timestamped and seed-parametrized.
type Scenario = gen.Scenario

// ScenarioEvent is one timestamped perturbation of a Scenario.
type ScenarioEvent = gen.Event

// ScenarioEventKind classifies a scenario event.
type ScenarioEventKind = gen.EventKind

// Scenario event kinds.
const (
	DeviceFail    = gen.DeviceFail
	DeviceDegrade = gen.DeviceDegrade
	TaskArrive    = gen.TaskArrive
	TaskDepart    = gen.TaskDepart
)

// ScenarioOptions configure NewScenario.
type ScenarioOptions = gen.ScenarioOptions

// NewScenario draws a valid random scenario from rng: timestamps
// strictly increase, the default (host) device never fails and at least
// two devices survive, and departures only reference live arrivals.
func NewScenario(rng *rand.Rand, opt ScenarioOptions) Scenario {
	return gen.NewScenario(rng, opt)
}

// ReadScenario parses a scenario from JSON (the format spmap-gen
// -kind scenario emits and Scenario.Write produces).
func ReadScenario(r io.Reader) (Scenario, error) { return gen.ReadScenario(r) }

// OnlineOptions configure Replay; zero values select the defaults
// (20 random schedules per kernel, a 3000-evaluation repair budget,
// refinement repair, the per-kernel evaluation cache on).
type OnlineOptions = online.Options

// OnlineStats report a whole replay: the opening mapping, one record
// per event (migration counts, kernel rebuilds, makespans before and
// after repair) and the totals. Every field except the cache telemetry
// is deterministic for a fixed seed regardless of Workers; Trace
// renders exactly the deterministic fields.
type OnlineStats = online.Stats

// OnlineEventStats records one replayed scenario event.
type OnlineEventStats = online.EventStats

// OnlineRepairMode selects the per-event warm-start repair pass.
type OnlineRepairMode = online.RepairMode

// Online repair modes.
const (
	// RepairRefine races the migrated incumbent against a fresh SPFF
	// seed and refines the better with annealing (default).
	RepairRefine = online.RepairRefine
	// RepairPortfolio races the full mapper portfolio warm-started with
	// the migrated incumbent.
	RepairPortfolio = online.RepairPortfolio
)

// Replay runs a scenario against a live copy of (g, p): the instance is
// mapped with SPFF plus refinement, then every event is applied —
// kernel rebuild, incumbent migration, budgeted warm-start repair — and
// the final mapping is returned with the full replay statistics. The
// inputs are not mutated. Warm-start repair is never worse than the
// migrated incumbent, and on the repository's seed instances never
// worse than a cold re-map at equal post-event budget (OnlineOptions.
// Cold selects that cold baseline for comparisons).
func Replay(g *DAG, p *Platform, sc Scenario, opt OnlineOptions) (Mapping, OnlineStats, error) {
	return online.Replay(g, p, sc, opt)
}

// OnlineInstance is the live state of one replay, for callers that need
// to checkpoint, interleave or resume streams instead of running Replay
// start to finish: NewOnlineInstance maps the opening state, Step
// applies one scenario event, Snapshot/RestoreInstance serialize and
// rebuild live state. An OnlineInstance is single-goroutine.
type OnlineInstance = online.Instance

// OnlineSnapshot is the serializable state of a live replay at an event
// boundary: the evolving graph, platform and incumbent mapping, the
// live arrival groups, the event cursor, the accumulated statistics and
// the trace-relevant options. Compiled kernels and evaluation caches
// are never serialized — RestoreInstance rebuilds them fresh, so a
// restored instance can never consult stale cache entries. Encode
// renders a snapshot as a versioned, byte-stable binary blob;
// DecodeOnlineSnapshot parses one back.
type OnlineSnapshot = online.Snapshot

// NewOnlineInstance builds a live replay instance on a private copy of
// (g, p): the opening mapping (SPFF plus refinement) is computed, no
// events are applied yet.
func NewOnlineInstance(g *DAG, p *Platform, opt OnlineOptions) (*OnlineInstance, error) {
	return online.NewInstance(g, p, opt)
}

// RestoreInstance rebuilds a live replay instance from a snapshot with
// a freshly compiled kernel and a fresh, empty evaluation cache.
// Trace-relevant options travel with the snapshot; opt may supply only
// host-local knobs (Workers, DisableCache) plus values equal to the
// snapshot's own — a non-zero conflicting value is an error rather than
// a silently diverging trace. A resumed replay's trace is byte-identical
// to an uninterrupted one.
func RestoreInstance(s *OnlineSnapshot, opt OnlineOptions) (*OnlineInstance, error) {
	return online.Restore(s, opt)
}

// DecodeOnlineSnapshot parses the versioned binary encoding produced by
// OnlineSnapshot.Encode.
func DecodeOnlineSnapshot(data []byte) (*OnlineSnapshot, error) {
	return online.DecodeSnapshot(data)
}

// Fleet types: many concurrent replay streams sharded across workers
// with periodic checkpoints and verifiable crash-resume.
type (
	// FleetStream is one scenario replay to drive: a (graph, platform)
	// instance, the event stream, and the replay options. The ID keys
	// the stream's checkpoints in the store and must be unique.
	FleetStream = fleet.Stream
	// FleetOptions configure RunFleet: shard count, checkpoint cadence,
	// the checkpoint store, and an interrupt hook for crash simulation.
	FleetOptions = fleet.Options
	// FleetResult reports one stream's outcome, in stream order
	// regardless of shard assignment.
	FleetResult = fleet.Result
	// FleetCheckpoint is one stream's latest persisted state: an
	// encoded OnlineSnapshot plus the event cursor it was taken at.
	FleetCheckpoint = fleet.Checkpoint
	// FleetStore persists at most one (the latest) checkpoint per
	// stream; implementations must be safe for concurrent shards.
	FleetStore = fleet.Store
)

// NewFleetMemStore returns an in-memory checkpoint store for tests and
// single-process fleets.
func NewFleetMemStore() *fleet.MemStore { return fleet.NewMemStore() }

// NewFleetDirStore returns a directory-backed checkpoint store (one
// file per stream, atomic replace), so a killed process resumes on the
// next run.
func NewFleetDirStore(dir string) (*fleet.DirStore, error) { return fleet.NewDirStore(dir) }

// RunFleet shards the streams across worker shards and replays each to
// completion, checkpointing into opt.Store at the configured cadence.
// Streams that already have a checkpoint in the store are restored and
// only the scenario tail is re-applied; an interrupted-and-resumed
// stream produces the same OnlineStats.Trace() as an uninterrupted one.
// Stream-to-shard assignment depends only on (index, shard count),
// never on timing, so fleet results are deterministic too.
func RunFleet(streams []FleetStream, opt FleetOptions) ([]FleetResult, error) {
	return fleet.Run(streams, opt)
}

// WorkflowFamily identifies one of the nine WfCommons-like workflow
// generators (§IV-D).
type WorkflowFamily = wf.Family

// Workflow families.
const (
	Genome1000  = wf.Genome1000
	Blast       = wf.Blast
	BWA         = wf.BWA
	Cycles      = wf.Cycles
	Epigenomics = wf.Epigenomics
	Montage     = wf.Montage
	Seismology  = wf.Seismology
	SoyKB       = wf.SoyKB
	SRASearch   = wf.SRASearch
)

// GenerateWorkflow builds one synthetic workflow instance of the family
// at the given scale (>= 1).
func GenerateWorkflow(f WorkflowFamily, scale int, rng *rand.Rand) *DAG {
	return wf.Generate(f, scale, rng)
}

// ServiceOptions configure a mapping service: the default platform,
// evaluation worker count, batch coalescing (max batch size and wait),
// cache bound, warm-instance table size, and request caps. The zero
// value selects production defaults; NoCoalesce disables cross-request
// batch coalescing (every request then evaluates directly).
type ServiceOptions = service.Options

// MappingService is spmapd's embeddable core: a long-running HTTP
// mapping service holding warm per-(graph, platform, schedules, seed)
// state — compiled simulation kernel, bounded evaluation cache, and a
// coalescing batcher that merges candidate evaluations from concurrent
// requests into shared engine batches. Endpoints: POST /v1/map,
// /v1/refine, /v1/evaluate (whole-mapping or patch-form candidates),
// /v1/replay, /v1/snapshot (capture live replay state as a
// content-addressed handle, or resume a stored snapshot and apply
// further events); GET /healthz and /v1/stats (JSON, or CSV with
// ?format=csv). Responses are byte-deterministic for a fixed (request,
// seed, workers) tuple regardless of batching mode or flush
// interleaving. Serve Handler() from any http.Server; Close drains the
// batchers.
type MappingService = service.Service

// ServiceStats is a telemetry snapshot of a mapping service: totals,
// per-instance coalescing/cache counters, and the per-request timing
// ring.
type ServiceStats = service.Stats

// ServiceTiming is one request's phase breakdown (queue, batch wait,
// evaluation, respond — microseconds), as embedded in responses on
// request ("timing": true) and listed by /v1/stats.
type ServiceTiming = service.Timing

// NewMappingService builds a mapping service ready to serve. See
// cmd/spmapd for the standalone daemon wrapping it.
func NewMappingService(opt ServiceOptions) *MappingService { return service.New(opt) }
